// End-to-end tests of the LASER engine: CRUD with projections, partial
// updates across layouts, flush/compaction correctness for every §7.2
// design, crash recovery, snapshots/scans, and a randomized property test
// against an in-memory reference model.

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <string>

#include "laser/laser_db.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace laser {
namespace {

using test::DesignParam;

class LaserDbTest : public ::testing::TestWithParam<DesignParam> {
 protected:
  static constexpr int kColumns = 8;
  static constexpr int kLevels = 5;

  void SetUp() override {
    env_ = NewMemEnv();
    Reopen();
  }

  void Reopen() {
    db_.reset();
    LaserOptions options = MakeOptions();
    ASSERT_TRUE(LaserDB::Open(options, &db_).ok());
  }

  LaserOptions MakeOptions() {
    LaserOptions options = test::TinyTreeOptions(env_.get(), "/db", kColumns,
                                                 kLevels);
    options.background_threads = 2;
    options.cg_config = test::DesignConfig(GetParam(), kColumns, kLevels);
    return options;
  }

  std::vector<ColumnValue> Row(uint64_t key) {
    return test::TestRow(key, kColumns);
  }

  std::unique_ptr<Env> env_;
  std::unique_ptr<LaserDB> db_;
};

TEST_P(LaserDbTest, InsertThenReadFullProjection) {
  ASSERT_TRUE(db_->Insert(42, Row(42)).ok());
  LaserDB::ReadResult result;
  ASSERT_TRUE(db_->Read(42, MakeColumnRange(1, kColumns), &result).ok());
  ASSERT_TRUE(result.found);
  for (int c = 1; c <= kColumns; ++c) {
    ASSERT_TRUE(result.values[c - 1].has_value());
    EXPECT_EQ(*result.values[c - 1], 42u * 100 + c);
  }
}

TEST_P(LaserDbTest, ReadWithNarrowProjection) {
  ASSERT_TRUE(db_->Insert(7, Row(7)).ok());
  LaserDB::ReadResult result;
  ASSERT_TRUE(db_->Read(7, {3, 5}, &result).ok());
  ASSERT_TRUE(result.found);
  ASSERT_EQ(result.values.size(), 2u);
  EXPECT_EQ(*result.values[0], 703u);
  EXPECT_EQ(*result.values[1], 705u);
}

TEST_P(LaserDbTest, MissingKeyNotFound) {
  ASSERT_TRUE(db_->Insert(1, Row(1)).ok());
  LaserDB::ReadResult result;
  ASSERT_TRUE(db_->Read(2, {1}, &result).ok());
  EXPECT_FALSE(result.found);
}

TEST_P(LaserDbTest, UpdateOverwritesColumns) {
  ASSERT_TRUE(db_->Insert(5, Row(5)).ok());
  ASSERT_TRUE(db_->Update(5, {{2, 9999}, {7, 8888}}).ok());
  LaserDB::ReadResult result;
  ASSERT_TRUE(db_->Read(5, MakeColumnRange(1, kColumns), &result).ok());
  ASSERT_TRUE(result.found);
  EXPECT_EQ(*result.values[1], 9999u);
  EXPECT_EQ(*result.values[6], 8888u);
  EXPECT_EQ(*result.values[0], 501u);  // untouched column
}

TEST_P(LaserDbTest, DeleteHidesRow) {
  ASSERT_TRUE(db_->Insert(5, Row(5)).ok());
  ASSERT_TRUE(db_->Delete(5).ok());
  LaserDB::ReadResult result;
  ASSERT_TRUE(db_->Read(5, {1}, &result).ok());
  EXPECT_FALSE(result.found);
}

TEST_P(LaserDbTest, ReinsertAfterDelete) {
  ASSERT_TRUE(db_->Insert(5, Row(5)).ok());
  ASSERT_TRUE(db_->Delete(5).ok());
  ASSERT_TRUE(db_->Insert(5, Row(6)).ok());
  LaserDB::ReadResult result;
  ASSERT_TRUE(db_->Read(5, {1}, &result).ok());
  ASSERT_TRUE(result.found);
  EXPECT_EQ(*result.values[0], 601u);
}

TEST_P(LaserDbTest, PersistsThroughFlush) {
  for (uint64_t k = 0; k < 100; ++k) ASSERT_TRUE(db_->Insert(k, Row(k)).ok());
  ASSERT_TRUE(db_->Update(50, {{1, 11}}).ok());
  ASSERT_TRUE(db_->Delete(60).ok());
  ASSERT_TRUE(db_->Flush().ok());

  LaserDB::ReadResult result;
  ASSERT_TRUE(db_->Read(50, MakeColumnRange(1, kColumns), &result).ok());
  ASSERT_TRUE(result.found);
  EXPECT_EQ(*result.values[0], 11u);
  EXPECT_EQ(*result.values[1], 5002u);
  ASSERT_TRUE(db_->Read(60, {1}, &result).ok());
  EXPECT_FALSE(result.found);
}

TEST_P(LaserDbTest, PersistsThroughFullCompaction) {
  for (uint64_t k = 0; k < 2000; ++k) ASSERT_TRUE(db_->Insert(k, Row(k)).ok());
  ASSERT_TRUE(db_->Update(100, {{3, 333}}).ok());
  ASSERT_TRUE(db_->Delete(200).ok());
  ASSERT_TRUE(db_->CompactUntilStable().ok());

  LaserDB::ReadResult result;
  ASSERT_TRUE(db_->Read(100, MakeColumnRange(1, kColumns), &result).ok());
  ASSERT_TRUE(result.found);
  EXPECT_EQ(*result.values[2], 333u);
  EXPECT_EQ(*result.values[0], 100u * 100 + 1);
  ASSERT_TRUE(db_->Read(200, {1}, &result).ok());
  EXPECT_FALSE(result.found);
  ASSERT_TRUE(db_->Read(1999, {8}, &result).ok());
  ASSERT_TRUE(result.found);

  // Data actually moved below level 0.
  auto version = db_->current_version();
  uint64_t deep_entries = 0;
  for (int level = 1; level < version->num_levels(); ++level) {
    for (int g = 0; g < version->num_groups(level); ++g) {
      deep_entries += version->GroupEntries(level, g);
    }
  }
  EXPECT_GT(deep_entries, 0u);
}

TEST_P(LaserDbTest, UpdatesMergeAcrossLevels) {
  // Old full rows pushed deep; fresh partial updates on top.
  for (uint64_t k = 0; k < 1000; ++k) ASSERT_TRUE(db_->Insert(k, Row(k)).ok());
  ASSERT_TRUE(db_->CompactUntilStable().ok());
  for (uint64_t k = 0; k < 1000; k += 10) {
    ASSERT_TRUE(db_->Update(k, {{4, k + 7}}).ok());
  }
  for (uint64_t k = 0; k < 1000; k += 10) {
    LaserDB::ReadResult result;
    ASSERT_TRUE(db_->Read(k, MakeColumnRange(1, kColumns), &result).ok());
    ASSERT_TRUE(result.found) << k;
    EXPECT_EQ(*result.values[3], k + 7) << k;       // updated column
    EXPECT_EQ(*result.values[0], k * 100 + 1) << k; // from the deep full row
  }
}

TEST_P(LaserDbTest, ScanReturnsSortedStitchedRows) {
  for (uint64_t k = 0; k < 500; ++k) ASSERT_TRUE(db_->Insert(k, Row(k)).ok());
  ASSERT_TRUE(db_->CompactUntilStable().ok());
  for (uint64_t k = 0; k < 500; k += 7) {
    ASSERT_TRUE(db_->Update(k, {{2, k}}).ok());
  }
  ASSERT_TRUE(db_->Delete(100).ok());

  auto scan = db_->NewScan(50, 149, {1, 2});
  ASSERT_NE(scan, nullptr);
  uint64_t expected_key = 50;
  int count = 0;
  for (; scan->Valid(); scan->Next()) {
    if (expected_key == 100) ++expected_key;  // deleted
    EXPECT_EQ(scan->key(), expected_key);
    const auto& row = scan->values();
    ASSERT_TRUE(row[0].has_value());
    EXPECT_EQ(*row[0], expected_key * 100 + 1);
    ASSERT_TRUE(row[1].has_value());
    if (expected_key % 7 == 0) {
      EXPECT_EQ(*row[1], expected_key);
    } else {
      EXPECT_EQ(*row[1], expected_key * 100 + 2);
    }
    ++expected_key;
    ++count;
  }
  EXPECT_TRUE(scan->status().ok());
  EXPECT_EQ(count, 99);  // 100 keys minus the deleted one
}

TEST_P(LaserDbTest, ScanEmptyRange) {
  ASSERT_TRUE(db_->Insert(10, Row(10)).ok());
  auto scan = db_->NewScan(20, 30, {1});
  ASSERT_NE(scan, nullptr);
  EXPECT_FALSE(scan->Valid());
}

TEST_P(LaserDbTest, RecoversFromWalAfterCrash) {
  for (uint64_t k = 0; k < 50; ++k) ASSERT_TRUE(db_->Insert(k, Row(k)).ok());
  ASSERT_TRUE(db_->Update(10, {{1, 424242}}).ok());
  // No flush: data only in WAL + memtable. Simulate crash by reopening.
  Reopen();
  LaserDB::ReadResult result;
  ASSERT_TRUE(db_->Read(10, MakeColumnRange(1, kColumns), &result).ok());
  ASSERT_TRUE(result.found);
  EXPECT_EQ(*result.values[0], 424242u);
  ASSERT_TRUE(db_->Read(49, {8}, &result).ok());
  ASSERT_TRUE(result.found);
}

TEST_P(LaserDbTest, RecoversManifestState) {
  for (uint64_t k = 0; k < 3000; ++k) ASSERT_TRUE(db_->Insert(k, Row(k)).ok());
  ASSERT_TRUE(db_->CompactUntilStable().ok());
  const SequenceNumber seq_before = db_->LastSequence();
  Reopen();
  EXPECT_GE(db_->LastSequence(), seq_before);
  for (uint64_t k : {0ull, 1499ull, 2999ull}) {
    LaserDB::ReadResult result;
    ASSERT_TRUE(db_->Read(k, {1, kColumns}, &result).ok());
    ASSERT_TRUE(result.found) << k;
    EXPECT_EQ(*result.values[0], k * 100 + 1);
  }
}

TEST_P(LaserDbTest, InvalidArgumentsRejected) {
  EXPECT_FALSE(db_->Insert(1, {1, 2}).ok());  // wrong arity
  EXPECT_FALSE(db_->Update(1, {}).ok());
  EXPECT_FALSE(db_->Update(1, {{0, 5}}).ok());
  EXPECT_FALSE(db_->Update(1, {{kColumns + 1, 5}}).ok());
  EXPECT_FALSE(db_->Update(1, {{3, 1}, {3, 2}}).ok());  // duplicate column
  LaserDB::ReadResult result;
  EXPECT_FALSE(db_->Read(1, {}, &result).ok());
  EXPECT_FALSE(db_->Read(1, {5, 3}, &result).ok());  // unsorted
  EXPECT_EQ(db_->NewScan(0, 1, {99}), nullptr);
}

TEST_P(LaserDbTest, UpdateNonexistentKeyYieldsPartialRow) {
  // §4.2: partial rows are inserted blindly; reading other columns gives
  // null, reading the updated column gives the value.
  ASSERT_TRUE(db_->Update(77, {{2, 5}}).ok());
  LaserDB::ReadResult result;
  ASSERT_TRUE(db_->Read(77, {2}, &result).ok());
  ASSERT_TRUE(result.found);
  EXPECT_EQ(*result.values[0], 5u);
  ASSERT_TRUE(db_->Read(77, {1}, &result).ok());
  EXPECT_FALSE(result.found);  // column 1 was never written
}

TEST_P(LaserDbTest, PartialUpdateAfterDeleteResurrectsOnlyThoseColumns) {
  ASSERT_TRUE(db_->Insert(9, Row(9)).ok());
  ASSERT_TRUE(db_->Delete(9).ok());
  ASSERT_TRUE(db_->Update(9, {{3, 123}}).ok());
  ASSERT_TRUE(db_->CompactUntilStable().ok());
  LaserDB::ReadResult result;
  ASSERT_TRUE(db_->Read(9, MakeColumnRange(1, kColumns), &result).ok());
  ASSERT_TRUE(result.found);
  EXPECT_EQ(*result.values[2], 123u);
  EXPECT_FALSE(result.values[0].has_value());  // killed by the tombstone
}

TEST_P(LaserDbTest, RandomizedAgainstReferenceModel) {
  Random rng(2024);
  // model[key] = per-column optional values (nullopt = null).
  std::map<uint64_t, std::vector<std::optional<ColumnValue>>> model;

  for (int op = 0; op < 6000; ++op) {
    const uint64_t key = rng.Uniform(400);
    const int action = static_cast<int>(rng.Uniform(10));
    if (action < 5) {  // insert
      auto row = Row(key + rng.Uniform(1000) * 1000);
      ASSERT_TRUE(db_->Insert(key, row).ok());
      auto& m = model[key];
      m.assign(kColumns, std::nullopt);
      for (int c = 0; c < kColumns; ++c) m[c] = row[c];
    } else if (action < 8) {  // partial update
      const int col = 1 + static_cast<int>(rng.Uniform(kColumns));
      const ColumnValue value = rng.Next() % 100000;
      ASSERT_TRUE(db_->Update(key, {{col, value}}).ok());
      auto it = model.find(key);
      if (it == model.end()) {
        model[key].assign(kColumns, std::nullopt);
      }
      model[key][col - 1] = value;
    } else if (action < 9) {  // delete
      ASSERT_TRUE(db_->Delete(key).ok());
      model.erase(key);
    } else if (op % 500 == 9) {  // occasional forced compaction
      ASSERT_TRUE(db_->CompactUntilStable().ok());
    }
  }
  ASSERT_TRUE(db_->CompactUntilStable().ok());

  // Full verification: every key, full projection.
  for (uint64_t key = 0; key < 400; ++key) {
    LaserDB::ReadResult result;
    ASSERT_TRUE(db_->Read(key, MakeColumnRange(1, kColumns), &result).ok());
    auto it = model.find(key);
    const bool expect_found =
        it != model.end() &&
        std::any_of(it->second.begin(), it->second.end(),
                    [](const auto& v) { return v.has_value(); });
    ASSERT_EQ(result.found, expect_found) << "key " << key;
    if (expect_found) {
      for (int c = 0; c < kColumns; ++c) {
        ASSERT_EQ(result.values[c], it->second[c]) << "key " << key << " col " << c;
      }
    }
  }

  // Scan verification.
  auto scan = db_->NewScan(0, 399, MakeColumnRange(1, kColumns));
  ASSERT_NE(scan, nullptr);
  auto expected = model.begin();
  for (; scan->Valid(); scan->Next()) {
    // Skip model rows that are all-null (deleted-then-updated corner).
    while (expected != model.end() &&
           std::none_of(expected->second.begin(), expected->second.end(),
                        [](const auto& v) { return v.has_value(); })) {
      ++expected;
    }
    ASSERT_NE(expected, model.end());
    EXPECT_EQ(scan->key(), expected->first);
    for (int c = 0; c < kColumns; ++c) {
      EXPECT_EQ(scan->values()[c], expected->second[c])
          << "key " << expected->first << " col " << c;
    }
    ++expected;
  }
  while (expected != model.end() &&
         std::none_of(expected->second.begin(), expected->second.end(),
                      [](const auto& v) { return v.has_value(); })) {
    ++expected;
  }
  EXPECT_EQ(expected, model.end());
}

TEST_P(LaserDbTest, StatsCountBlockReads) {
  for (uint64_t k = 0; k < 2000; ++k) ASSERT_TRUE(db_->Insert(k, Row(k)).ok());
  ASSERT_TRUE(db_->CompactUntilStable().ok());
  db_->stats().Reset();
  LaserDB::ReadResult result;
  ASSERT_TRUE(db_->Read(1234, {1}, &result).ok());
  ASSERT_TRUE(result.found);
  EXPECT_GT(db_->stats().point_reads.load(), 0u);
  EXPECT_GT(db_->stats().data_block_reads.load() +
                db_->stats().block_cache_hits.load(),
            0u);
}

INSTANTIATE_TEST_SUITE_P(
    Designs, LaserDbTest,
    ::testing::Values(DesignParam{"RowOnly", 0}, DesignParam{"Columnar", 1},
                      DesignParam{"CgSize2", 2}, DesignParam{"CgSize3", 3},
                      DesignParam{"HtapSimple", -1}),
    [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace laser
