// WriteBatch semantics: atomic multi-op commits through the group-commit
// write path, validation, WAL persistence of coalesced records, and
// all-or-nothing replay of a torn batch record.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "laser/laser_db.h"
#include "laser/write_batch.h"
#include "tests/test_util.h"
#include "util/env.h"

namespace laser {
namespace {

constexpr int kColumns = 4;

class WriteBatchTest : public ::testing::Test {
 protected:
  void SetUp() override { env_ = NewMemEnv(); }

  LaserOptions MakeOptions(const std::string& path) const {
    LaserOptions options;
    options.env = env_.get();
    options.path = path;
    options.schema = Schema::UniformInt32(kColumns);
    options.num_levels = 4;
    options.cg_config = CgConfig::EquiWidth(kColumns, 4, 2);
    options.write_buffer_size = 1 << 20;
    options.background_threads = 1;
    return options;
  }

  static std::vector<ColumnValue> Row(uint64_t key) {
    return test::TestRow(key, kColumns);
  }

  static void ExpectRow(LaserDB* db, uint64_t key) {
    LaserDB::ReadResult result;
    ASSERT_TRUE(db->Read(key, MakeColumnRange(1, kColumns), &result).ok());
    ASSERT_TRUE(result.found) << "key " << key;
    for (int c = 1; c <= kColumns; ++c) {
      EXPECT_EQ(result.values[c - 1], key * 100 + c) << "key " << key;
    }
  }

  static void ExpectAbsent(LaserDB* db, uint64_t key) {
    LaserDB::ReadResult result;
    ASSERT_TRUE(db->Read(key, MakeColumnRange(1, kColumns), &result).ok());
    EXPECT_FALSE(result.found) << "key " << key;
  }

  std::unique_ptr<Env> env_;
};

TEST_F(WriteBatchTest, MultiOpBatchAppliesAtomicallyInOrder) {
  std::unique_ptr<LaserDB> db;
  ASSERT_TRUE(LaserDB::Open(MakeOptions("/wb"), &db).ok());

  WriteBatch batch;
  batch.Insert(1, Row(1));
  batch.Insert(2, Row(2));
  batch.Update(1, {{2, 9002}});
  batch.Delete(2);
  batch.Insert(3, Row(3));
  ASSERT_EQ(batch.count(), 5u);
  ASSERT_TRUE(db->Write(batch).ok());

  // Ops within a batch apply in order: the update lands on top of insert 1,
  // the delete kills insert 2.
  LaserDB::ReadResult result;
  ASSERT_TRUE(db->Read(1, MakeColumnRange(1, kColumns), &result).ok());
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.values[0], 101);
  EXPECT_EQ(result.values[1], 9002);
  ExpectAbsent(db.get(), 2);
  ExpectRow(db.get(), 3);

  // One batch = one sequence number per op.
  EXPECT_EQ(db->LastSequence(), 5u);
}

TEST_F(WriteBatchTest, EmptyBatchIsNoOp) {
  std::unique_ptr<LaserDB> db;
  ASSERT_TRUE(LaserDB::Open(MakeOptions("/wb_empty"), &db).ok());
  WriteBatch batch;
  ASSERT_TRUE(db->Write(batch).ok());
  EXPECT_EQ(db->LastSequence(), 0u);
}

TEST_F(WriteBatchTest, ValidationRejectsWholeBatch) {
  std::unique_ptr<LaserDB> db;
  ASSERT_TRUE(LaserDB::Open(MakeOptions("/wb_invalid"), &db).ok());

  // A bad op anywhere rejects the batch before anything is enqueued.
  WriteBatch bad_arity;
  bad_arity.Insert(1, Row(1));
  bad_arity.Insert(2, {1, 2});  // wrong arity
  EXPECT_FALSE(db->Write(bad_arity).ok());
  ExpectAbsent(db.get(), 1);

  WriteBatch bad_update;
  bad_update.Insert(3, Row(3));
  bad_update.Update(3, {{2, 1}, {2, 2}});  // duplicate column
  EXPECT_FALSE(db->Write(bad_update).ok());
  ExpectAbsent(db.get(), 3);

  WriteBatch bad_range;
  bad_range.Update(4, {{kColumns + 1, 1}});  // column out of range
  EXPECT_FALSE(db->Write(bad_range).ok());

  EXPECT_EQ(db->LastSequence(), 0u);
  // The engine is not poisoned by rejected batches.
  ASSERT_TRUE(db->Insert(5, Row(5)).ok());
  ExpectRow(db.get(), 5);
}

TEST_F(WriteBatchTest, BatchSurvivesReopenViaWalReplay) {
  const LaserOptions options = MakeOptions("/wb_reopen");
  {
    std::unique_ptr<LaserDB> db;
    ASSERT_TRUE(LaserDB::Open(options, &db).ok());
    WriteBatch batch;
    for (uint64_t key = 1; key <= 8; ++key) batch.Insert(key, Row(key));
    batch.Delete(8);
    ASSERT_TRUE(db->Write(batch).ok());
  }
  std::unique_ptr<LaserDB> db;
  ASSERT_TRUE(LaserDB::Open(options, &db).ok());
  for (uint64_t key = 1; key <= 7; ++key) ExpectRow(db.get(), key);
  ExpectAbsent(db.get(), 8);
  EXPECT_EQ(db->LastSequence(), 9u);
}

TEST_F(WriteBatchTest, TornCoalescedRecordDropsTheWholeGroup) {
  const LaserOptions options = MakeOptions("/wb_torn");
  {
    std::unique_ptr<LaserDB> db;
    ASSERT_TRUE(LaserDB::Open(options, &db).ok());
    WriteBatch first;
    for (uint64_t key = 1; key <= 3; ++key) first.Insert(key, Row(key));
    ASSERT_TRUE(db->Write(first).ok());
    WriteBatch second;
    for (uint64_t key = 4; key <= 6; ++key) second.Insert(key, Row(key));
    ASSERT_TRUE(db->Write(second).ok());
  }

  // Tear the tail of the second batch's record (a crash mid-append). The
  // whole group must drop on replay — no partial batch may surface.
  std::vector<std::string> children;
  ASSERT_TRUE(env_->GetChildren("/wb_torn", &children).ok());
  std::string wal_name;
  for (const std::string& name : children) {
    if (name.size() > 4 && name.substr(name.size() - 4) == ".wal") {
      wal_name = "/wb_torn/" + name;
    }
  }
  ASSERT_FALSE(wal_name.empty());
  std::string data;
  ASSERT_TRUE(env_->ReadFileToString(wal_name, &data).ok());
  ASSERT_GT(data.size(), 10u);
  ASSERT_TRUE(
      env_->WriteStringToFile(Slice(data.data(), data.size() - 10), wal_name).ok());

  std::unique_ptr<LaserDB> db;
  ASSERT_TRUE(LaserDB::Open(options, &db).ok());
  for (uint64_t key = 1; key <= 3; ++key) ExpectRow(db.get(), key);
  for (uint64_t key = 4; key <= 6; ++key) ExpectAbsent(db.get(), key);
}

}  // namespace
}  // namespace laser
