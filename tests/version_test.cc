// Version, manifest and compaction-picker tests.

#include <gtest/gtest.h>

#include "laser/options.h"
#include "lsm/compaction_picker.h"
#include "lsm/manifest.h"
#include "lsm/version.h"
#include "sst/sst_builder.h"
#include "util/coding.h"

namespace laser {
namespace {

std::shared_ptr<FileMetaData> FakeFile(uint64_t number, uint64_t lo, uint64_t hi,
                                       uint64_t size, uint64_t smallest_seq = 1) {
  auto meta = std::make_shared<FileMetaData>();
  meta->file_number = number;
  meta->file_size = size;
  meta->smallest = MakeInternalKey(EncodeKey64(lo), smallest_seq + 10, kTypeFullRow);
  meta->largest = MakeInternalKey(EncodeKey64(hi), smallest_seq, kTypeFullRow);
  meta->props.num_entries = size / 100;
  meta->props.smallest_seq = smallest_seq;
  meta->props.largest_seq = smallest_seq + 10;
  return meta;
}

TEST(VersionTest, EmptyShape) {
  auto v = Version::Empty(4, {1, 2, 2, 4});
  EXPECT_EQ(v->num_levels(), 4);
  EXPECT_EQ(v->num_groups(0), 1);
  EXPECT_EQ(v->num_groups(3), 4);
  EXPECT_EQ(v->TotalBytes(), 0u);
}

TEST(VersionTest, CloneSharesFilesNotStructure) {
  auto v = Version::Empty(2, {1, 1});
  v->AddLevel0File(FakeFile(1, 0, 10, 1000));
  auto clone = v->Clone();
  clone->AddLevel0File(FakeFile(2, 11, 20, 1000));
  EXPECT_EQ(v->files(0, 0).size(), 1u);
  EXPECT_EQ(clone->files(0, 0).size(), 2u);
  EXPECT_EQ(v->files(0, 0)[0], clone->files(0, 0)[0]);  // shared pointer
}

TEST(VersionTest, GroupAccounting) {
  auto v = Version::Empty(2, {1, 1});
  v->ReplaceFiles(1, 0, {}, {FakeFile(1, 0, 10, 500), FakeFile(2, 11, 20, 700)});
  EXPECT_EQ(v->GroupBytes(1, 0), 1200u);
  EXPECT_EQ(v->GroupEntries(1, 0), 12u);
  EXPECT_EQ(v->TotalBytes(), 1200u);
}

TEST(VersionTest, OverlappingFiles) {
  auto v = Version::Empty(2, {1, 1});
  v->ReplaceFiles(1, 0, {},
                  {FakeFile(1, 0, 10, 100), FakeFile(2, 20, 30, 100),
                   FakeFile(3, 40, 50, 100)});
  auto overlap = v->OverlappingFiles(1, 0, EncodeKey64(25), EncodeKey64(45));
  ASSERT_EQ(overlap.size(), 2u);
  EXPECT_EQ(overlap[0]->file_number, 2u);
  EXPECT_EQ(overlap[1]->file_number, 3u);
  EXPECT_TRUE(v->OverlappingFiles(1, 0, EncodeKey64(11), EncodeKey64(19)).empty());
}

TEST(VersionTest, FileContainingBinarySearch) {
  auto v = Version::Empty(2, {1, 1});
  v->ReplaceFiles(1, 0, {},
                  {FakeFile(1, 0, 10, 100), FakeFile(2, 20, 30, 100),
                   FakeFile(3, 40, 50, 100)});
  ASSERT_NE(v->FileContaining(1, 0, EncodeKey64(25)), nullptr);
  EXPECT_EQ(v->FileContaining(1, 0, EncodeKey64(25))->file_number, 2u);
  EXPECT_EQ(v->FileContaining(1, 0, EncodeKey64(15)), nullptr);  // gap
  EXPECT_EQ(v->FileContaining(1, 0, EncodeKey64(55)), nullptr);  // beyond
  EXPECT_EQ(v->FileContaining(1, 0, EncodeKey64(0))->file_number, 1u);
}

TEST(VersionTest, ReplaceFilesKeepsRunSorted) {
  auto v = Version::Empty(2, {1, 1});
  auto f1 = FakeFile(1, 20, 30, 100);
  v->ReplaceFiles(1, 0, {}, {f1});
  v->ReplaceFiles(1, 0, {}, {FakeFile(2, 0, 10, 100)});
  ASSERT_EQ(v->files(1, 0).size(), 2u);
  EXPECT_EQ(v->files(1, 0)[0]->file_number, 2u);  // sorted by smallest key
  v->ReplaceFiles(1, 0, {f1}, {});
  ASSERT_EQ(v->files(1, 0).size(), 1u);
  EXPECT_EQ(v->files(1, 0)[0]->file_number, 2u);
}

// -------------------------------------------------------------- Manifest --

TEST(ManifestTest, SaveLoadRoundTrip) {
  auto env = NewMemEnv();
  ASSERT_TRUE(env->CreateDir("/db").ok());

  // Build one real SST so the manifest loader can open it.
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env->NewWritableFile("/db/" + SstFileName(7), &file).ok());
  SstBuilder builder(SstBuildOptions(), std::move(file));
  builder.Add(MakeInternalKey(EncodeKey64(1), 5, kTypeFullRow), "v1");
  builder.Add(MakeInternalKey(EncodeKey64(2), 6, kTypeFullRow), "v2");
  ASSERT_TRUE(builder.Finish().ok());

  auto meta = std::make_shared<FileMetaData>();
  meta->file_number = 7;
  meta->file_size = builder.FileSize();
  meta->smallest = builder.smallest_key();
  meta->largest = builder.largest_key();
  meta->props = builder.properties();

  ManifestData data;
  data.version = Version::Empty(3, {1, 2, 2});
  data.version->mutable_files(1, 1).push_back(meta);
  data.next_file_number = 8;
  data.last_sequence = 6;
  data.wal_number = 3;

  Manifest manifest(env.get(), "/db");
  EXPECT_FALSE(manifest.Exists());
  ASSERT_TRUE(manifest.Save(data).ok());
  EXPECT_TRUE(manifest.Exists());

  ManifestData loaded;
  ASSERT_TRUE(manifest.Load(nullptr, nullptr, &loaded).ok());
  EXPECT_EQ(loaded.next_file_number, 8u);
  EXPECT_EQ(loaded.last_sequence, 6u);
  EXPECT_EQ(loaded.wal_number, 3u);
  ASSERT_EQ(loaded.version->num_levels(), 3);
  ASSERT_EQ(loaded.version->files(1, 1).size(), 1u);
  const auto& f = loaded.version->files(1, 1)[0];
  EXPECT_EQ(f->file_number, 7u);
  EXPECT_EQ(f->props.num_entries, 2u);
  ASSERT_NE(f->reader, nullptr);
}

TEST(ManifestTest, DetectsCorruption) {
  auto env = NewMemEnv();
  ASSERT_TRUE(env->CreateDir("/db").ok());
  ManifestData data;
  data.version = Version::Empty(2, {1, 1});
  Manifest manifest(env.get(), "/db");
  ASSERT_TRUE(manifest.Save(data).ok());

  std::string contents;
  ASSERT_TRUE(env->ReadFileToString("/db/MANIFEST", &contents).ok());
  contents[contents.size() / 2] ^= 0x1;
  ASSERT_TRUE(env->WriteStringToFile(Slice(contents), "/db/MANIFEST").ok());

  ManifestData loaded;
  EXPECT_TRUE(manifest.Load(nullptr, nullptr, &loaded).IsCorruption());
}

// ------------------------------------------------------ CompactionPicker --

class PickerTest : public ::testing::Test {
 protected:
  PickerTest() {
    options_.env = nullptr;
    options_.path = "/x";
    options_.schema = Schema::UniformInt32(4);
    options_.num_levels = 3;
    options_.size_ratio = 2;
    options_.level0_bytes = 1000;
    options_.level0_file_compaction_trigger = 4;
    options_.cg_config = CgConfig::EquiWidth(4, 3, 2);  // L1/L2: <1,2><3,4>
    EXPECT_TRUE(options_.Finalize().ok());
    picker_ = std::make_unique<CompactionPicker>(&options_);
  }

  LaserOptions options_;
  std::unique_ptr<CompactionPicker> picker_;
};

TEST_F(PickerTest, CapacityApportionedByWidth) {
  // Level 1 capacity = 2000 bytes; groups <1,2> and <3,4> have equal widths
  // (8-byte key + 2 * 4-byte columns each).
  auto v = Version::Empty(options_.cg_config);
  EXPECT_EQ(picker_->GroupCapacityBytes(*v, 1, 0),
            picker_->GroupCapacityBytes(*v, 1, 1));
  EXPECT_EQ(picker_->GroupCapacityBytes(*v, 1, 0) +
                picker_->GroupCapacityBytes(*v, 1, 1),
            2000u);
  // Level 2 is T times bigger.
  EXPECT_EQ(picker_->GroupCapacityBytes(*v, 2, 0),
            2 * picker_->GroupCapacityBytes(*v, 1, 0));
}

TEST_F(PickerTest, L0ScoreByFileCount) {
  auto v = Version::Empty(options_.cg_config);
  for (int i = 0; i < 4; ++i) {
    v->AddLevel0File(FakeFile(i + 1, i * 10, i * 10 + 5, 500));
  }
  EXPECT_GE(picker_->Score(*v, 0, 0), 1.0);
  EXPECT_TRUE(picker_->NeedsCompaction(*v));

  auto job = picker_->Pick(*v, {});
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(job->level, 0);
  EXPECT_EQ(job->parent_files.size(), 4u);          // all L0 runs
  EXPECT_EQ(job->child_groups.size(), 2u);          // both L1 groups
}

TEST_F(PickerTest, PicksMostOverflowingGroup) {
  auto v = Version::Empty(options_.cg_config);
  // Group (1,1) overflows its 1000-byte capacity; (1,0) does not.
  v->ReplaceFiles(1, 0, {}, {FakeFile(1, 0, 10, 800)});
  v->ReplaceFiles(1, 1, {}, {FakeFile(2, 0, 10, 3000)});
  auto job = picker_->Pick(*v, {});
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(job->level, 1);
  EXPECT_EQ(job->group, 1);
  EXPECT_TRUE(job->to_bottom_level);
  // Child of <3,4> at level 2 is group 1 only.
  EXPECT_EQ(job->child_groups, (std::vector<int>{1}));
}

TEST_F(PickerTest, BusyClaimsBlockJob) {
  auto v = Version::Empty(options_.cg_config);
  v->ReplaceFiles(1, 1, {}, {FakeFile(2, 0, 10, 3000)});
  std::set<std::pair<int, int>> busy = {{2, 1}};  // child claimed
  EXPECT_FALSE(picker_->Pick(*v, busy).has_value());
  busy = {{1, 1}};  // parent claimed
  EXPECT_FALSE(picker_->Pick(*v, busy).has_value());
  EXPECT_TRUE(picker_->Pick(*v, {}).has_value());
}

TEST_F(PickerTest, PriorityOldestSmallestSeqFirst) {
  options_.compaction_priority = CompactionPriority::kOldestSmallestSeqFirst;
  CompactionPicker picker(&options_);
  auto v = Version::Empty(options_.cg_config);
  v->ReplaceFiles(1, 0, {},
                  {FakeFile(1, 0, 10, 2000, /*smallest_seq=*/50),
                   FakeFile(2, 20, 30, 3000, /*smallest_seq=*/10)});
  auto job = picker.Pick(*v, {});
  ASSERT_TRUE(job.has_value());
  ASSERT_EQ(job->parent_files.size(), 1u);
  EXPECT_EQ(job->parent_files[0]->file_number, 2u);  // oldest seq
}

TEST_F(PickerTest, PriorityByCompensatedSize) {
  options_.compaction_priority = CompactionPriority::kByCompensatedSize;
  CompactionPicker picker(&options_);
  auto v = Version::Empty(options_.cg_config);
  v->ReplaceFiles(1, 0, {},
                  {FakeFile(1, 0, 10, 2000, 50), FakeFile(2, 20, 30, 3000, 10)});
  // Same data, size priority picks file 2 (larger); here both priorities
  // agree, so distinguish with reversed sizes.
  auto v2 = Version::Empty(options_.cg_config);
  v2->ReplaceFiles(1, 0, {},
                   {FakeFile(1, 0, 10, 3000, 50), FakeFile(2, 20, 30, 2000, 10)});
  auto job = picker.Pick(*v2, {});
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(job->parent_files[0]->file_number, 1u);  // largest file
}

TEST_F(PickerTest, NothingToDoOnEmptyTree) {
  auto v = Version::Empty(options_.cg_config);
  EXPECT_FALSE(picker_->NeedsCompaction(*v));
  EXPECT_FALSE(picker_->Pick(*v, {}).has_value());
}

TEST_F(PickerTest, ChildFilesLimitedToOverlap) {
  auto v = Version::Empty(options_.cg_config);
  v->ReplaceFiles(1, 1, {}, {FakeFile(2, 20, 30, 3000)});
  v->ReplaceFiles(2, 1, {},
                  {FakeFile(3, 0, 10, 100), FakeFile(4, 25, 28, 100),
                   FakeFile(5, 50, 60, 100)});
  auto job = picker_->Pick(*v, {});
  ASSERT_TRUE(job.has_value());
  ASSERT_EQ(job->child_files.size(), 1u);
  ASSERT_EQ(job->child_files[0].size(), 1u);
  EXPECT_EQ(job->child_files[0][0]->file_number, 4u);
}

}  // namespace
}  // namespace laser
