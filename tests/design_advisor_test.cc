// Design advisor tests (§6): atom splitting, containment of the output,
// cost-optimality on small instances, behaviour on the paper's HW workload.

#include <gtest/gtest.h>

#include "cost/design_advisor.h"
#include "workload/htap_workload.h"

namespace laser {
namespace {

LsmShape MakeShape(int columns, int levels) {
  LsmShape shape;
  shape.num_levels = levels;
  shape.size_ratio = 2;
  shape.entries_per_block = 40;
  shape.blocks_level0 = 1000;
  shape.num_columns = columns;
  return shape;
}

TEST(DesignAdvisorTest, NoWorkloadYieldsRowFriendlyDesign) {
  // With only inserts, Eq. 9 is minimized by one CG per level (the insert
  // term w*T*g_i grows with group count).
  Schema schema = Schema::UniformInt32(8);
  DesignAdvisor advisor(&schema, MakeShape(8, 4));
  WorkloadTrace trace(4);
  trace.AddInsert(100000);
  CgConfig config = advisor.SelectDesign(trace);
  ASSERT_TRUE(config.Validate(8).ok());
  for (int level = 0; level < 4; ++level) {
    EXPECT_EQ(config.num_groups(level), 1) << "level " << level;
  }
}

TEST(DesignAdvisorTest, ScanHeavyDeepLevelsSplit) {
  // Heavy narrow scans should split off the scanned columns at the deep
  // levels (where most scanned entries live).
  Schema schema = Schema::UniformInt32(8);
  DesignAdvisor advisor(&schema, MakeShape(8, 4));
  WorkloadTrace trace(4);
  trace.AddInsert(100);
  trace.AddRangeScan({7, 8}, /*selected=*/1e7, /*count=*/500);
  CgConfig config = advisor.SelectDesign(trace);
  ASSERT_TRUE(config.Validate(8).ok());
  // The last level must isolate {7,8} from the wide remainder.
  bool found = false;
  for (const ColumnSet& group : config.groups(3)) {
    if (group == ColumnSet{7, 8}) found = true;
  }
  EXPECT_TRUE(found) << config.ToString();
}

TEST(DesignAdvisorTest, PointReadHeavyTopLevelsStayWide) {
  // Wide point reads at the top levels keep those levels row-ish even when
  // scans dominate the bottom.
  Schema schema = Schema::UniformInt32(8);
  DesignAdvisor advisor(&schema, MakeShape(8, 4));
  WorkloadTrace trace(4);
  trace.AddInsert(100);
  trace.AddPointRead(MakeColumnRange(1, 8), /*level=*/1, /*count=*/1000000);
  trace.AddRangeScan({7, 8}, 1e5, 500);
  CgConfig config = advisor.SelectDesign(trace);
  ASSERT_TRUE(config.Validate(8).ok());
  EXPECT_EQ(config.num_groups(1), 1) << config.ToString();
  EXPECT_GT(config.num_groups(3), 1) << config.ToString();
}

TEST(DesignAdvisorTest, OutputSatisfiesContainmentAlways) {
  Schema schema = Schema::UniformInt32(12);
  DesignAdvisor advisor(&schema, MakeShape(12, 6));
  WorkloadTrace trace(6);
  trace.AddInsert(1000);
  trace.AddPointRead(MakeColumnRange(1, 12), 1, 500);
  trace.AddPointRead(MakeColumnRange(5, 12), 2, 400);
  trace.AddRangeScan(MakeColumnRange(9, 12), 5e5, 50);
  trace.AddRangeScan({11, 12}, 5e6, 20);
  trace.AddUpdate({3}, 100);
  CgConfig config = advisor.SelectDesign(trace);
  EXPECT_TRUE(config.Validate(12).ok()) << config.ToString();
}

TEST(DesignAdvisorTest, LevelCostMatchesManualComputation) {
  Schema schema = Schema::UniformInt32(4);
  LsmShape shape = MakeShape(4, 2);
  DesignAdvisor advisor(&schema, shape);
  WorkloadTrace trace(2);
  trace.AddInsert(100);
  trace.AddPointRead({1, 2}, 1, 10);

  const std::vector<ColumnSet> groups = {{1, 2}, {3, 4}};
  // insert: w*T*g/(B*c) = 100*2*2/(40*4) = 2.5; reads: 10 * E^g(1 group) = 10.
  EXPECT_NEAR(advisor.LevelCost(1, groups, trace), 12.5, 1e-9);

  const std::vector<ColumnSet> row = {{1, 2, 3, 4}};
  // insert: 100*2*1/160 = 1.25; reads: 10.
  EXPECT_NEAR(advisor.LevelCost(1, row, trace), 11.25, 1e-9);
}

TEST(DesignAdvisorTest, HwWorkloadProducesLifecycleAwareDesign) {
  // The paper's HW trace: wide reads resolve high, narrower reads deeper,
  // narrow scans everywhere. Expect progressively narrower CGs down the
  // tree, as in Figure 9(b).
  Schema schema = Schema::UniformInt32(30);
  DesignAdvisor advisor(&schema, MakeShape(30, 8));
  HtapWorkloadRunner runner(HtapWorkloadSpec::NarrowHW(1.0));
  WorkloadTrace trace(8);
  runner.FillTrace(&trace, 8, 2);

  CgConfig config = advisor.SelectDesign(trace);
  ASSERT_TRUE(config.Validate(30).ok());
  // Monotone non-decreasing group counts down the tree.
  for (int level = 2; level < 8; ++level) {
    EXPECT_GE(config.num_groups(level), config.num_groups(level - 1))
        << config.ToString();
  }
  // The deepest level separates the Q5 projection (28-30) from colder
  // columns one way or another: group containing col 28 is narrow.
  const int group_of_28 = config.GroupOf(7, 28);
  ASSERT_GE(group_of_28, 0);
  EXPECT_LE(config.groups(7)[group_of_28].size(), 10u) << config.ToString();
}

TEST(DesignAdvisorTest, GreedyFallbackHandlesManyAtoms) {
  // 16 single-column scan projections -> 16 atoms > max_exact_atoms.
  Schema schema = Schema::UniformInt32(16);
  AdvisorOptions options;
  options.max_exact_atoms = 6;
  DesignAdvisor advisor(&schema, MakeShape(16, 3), options);
  WorkloadTrace trace(3);
  trace.AddInsert(10000);
  for (int c = 1; c <= 16; ++c) {
    trace.AddRangeScan({c}, 1e5, 5);
  }
  CgConfig config = advisor.SelectDesign(trace);
  EXPECT_TRUE(config.Validate(16).ok()) << config.ToString();
}

TEST(DesignAdvisorTest, SelectionIsFastForWideSchema) {
  // §6.3 reports 3 seconds for 100 columns and 8 levels; ours must be well
  // under that.
  Schema schema = Schema::UniformInt32(100);
  DesignAdvisor advisor(&schema, MakeShape(100, 8));
  WorkloadTrace trace(8);
  trace.AddInsert(1000000);
  trace.AddPointRead(MakeColumnRange(1, 100), 1, 1000);
  trace.AddPointRead(MakeColumnRange(51, 100), 3, 1000);
  trace.AddRangeScan(MakeColumnRange(71, 100), 1e7, 12);
  trace.AddRangeScan(MakeColumnRange(91, 100), 5e7, 12);

  Env* env = Env::Default();
  const uint64_t start = env->NowMicros();
  CgConfig config = advisor.SelectDesign(trace);
  const double seconds = static_cast<double>(env->NowMicros() - start) / 1e6;
  EXPECT_TRUE(config.Validate(100).ok());
  EXPECT_LT(seconds, 3.0);
}

}  // namespace
}  // namespace laser
