// Property sweeps (TEST_P) across design × seed: randomized CRUD histories
// with interleaved flushes, compactions and reopens must match an in-memory
// reference model under every layout — the engine-level invariant that the
// Real-Time LSM-Tree's layout changes are semantically invisible (§3.2).
// Also: bloom false-positive-rate sweep and scan-order invariants.

#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "laser/laser_db.h"
#include "sst/bloom.h"
#include "util/coding.h"
#include "util/random.h"

namespace laser {
namespace {

struct SweepParam {
  int design;  // 0 row, 1 column, 2 equi-3, 3 htap-simple
  uint64_t seed;
};

std::string DesignName(int design) {
  switch (design) {
    case 0: return "Row";
    case 1: return "Column";
    case 2: return "Equi3";
    default: return "HtapSimple";
  }
}

class EngineModelSweep : public ::testing::TestWithParam<SweepParam> {
 protected:
  static constexpr int kColumns = 5;
  static constexpr int kLevels = 4;
  static constexpr uint64_t kKeySpace = 250;

  void SetUp() override {
    env_ = NewMemEnv();
    Reopen();
  }

  void Reopen() {
    db_.reset();
    LaserOptions options;
    options.env = env_.get();
    options.path = "/sweep";
    options.schema = Schema::UniformInt32(kColumns);
    options.num_levels = kLevels;
    switch (GetParam().design) {
      case 0:
        options.cg_config = CgConfig::RowOnly(kColumns, kLevels);
        break;
      case 1:
        options.cg_config = CgConfig::ColumnOnly(kColumns, kLevels);
        break;
      case 2:
        options.cg_config = CgConfig::EquiWidth(kColumns, kLevels, 3);
        break;
      default:
        options.cg_config = CgConfig::HtapSimple(kColumns, kLevels, 2);
    }
    options.write_buffer_size = 8 * 1024;
    options.level0_bytes = 16 * 1024;
    options.target_sst_size = 8 * 1024;
    options.block_size = 512;
    ASSERT_TRUE(LaserDB::Open(options, &db_).ok());
  }

  using ModelRow = std::vector<std::optional<ColumnValue>>;

  bool ModelRowVisible(const ModelRow& row) {
    for (const auto& v : row) {
      if (v.has_value()) return true;
    }
    return false;
  }

  std::unique_ptr<Env> env_;
  std::unique_ptr<LaserDB> db_;
};

TEST_P(EngineModelSweep, RandomHistoryMatchesModel) {
  Random rng(GetParam().seed * 7919 + 13);
  std::map<uint64_t, ModelRow> model;

  for (int op = 0; op < 4000; ++op) {
    const uint64_t key = rng.Uniform(kKeySpace);
    const int action = static_cast<int>(rng.Uniform(20));
    if (action < 9) {
      std::vector<ColumnValue> row(kColumns);
      for (int c = 0; c < kColumns; ++c) row[c] = rng.Next() % 1000000;
      ASSERT_TRUE(db_->Insert(key, row).ok());
      ModelRow& m = model[key];
      m.assign(kColumns, std::nullopt);
      for (int c = 0; c < kColumns; ++c) m[c] = row[c];
    } else if (action < 15) {
      // 1-3 random distinct columns.
      std::vector<ColumnValuePair> values;
      for (int c = 1; c <= kColumns; ++c) {
        if (rng.OneIn(3)) values.push_back({c, rng.Next() % 1000000});
      }
      if (values.empty()) values.push_back({1, rng.Next() % 1000000});
      ASSERT_TRUE(db_->Update(key, values).ok());
      auto it = model.find(key);
      if (it == model.end()) {
        it = model.emplace(key, ModelRow(kColumns, std::nullopt)).first;
      }
      for (const auto& [col, value] : values) it->second[col - 1] = value;
    } else if (action < 17) {
      ASSERT_TRUE(db_->Delete(key).ok());
      model.erase(key);
    } else if (action == 17 && op % 257 == 17) {
      ASSERT_TRUE(db_->Flush().ok());
    } else if (action == 18 && op % 509 == 18) {
      ASSERT_TRUE(db_->CompactUntilStable().ok());
    } else if (action == 19 && op % 1021 == 19) {
      Reopen();  // crash-free restart mid-history
    }
    // Occasional point check keeps failures local to the breaking op.
    if (op % 97 == 0) {
      LaserDB::ReadResult result;
      ASSERT_TRUE(db_->Read(key, {1, kColumns}, &result).ok());
      const auto it = model.find(key);
      const bool expected =
          it != model.end() &&
          (it->second[0].has_value() || it->second[kColumns - 1].has_value());
      if (expected) {
        ASSERT_TRUE(result.found) << "op " << op << " key " << key;
        ASSERT_EQ(result.values[0], it->second[0]) << "op " << op;
        ASSERT_EQ(result.values[1], it->second[kColumns - 1]) << "op " << op;
      }
    }
  }

  ASSERT_TRUE(db_->CompactUntilStable().ok());

  // Full-projection verification of every key.
  for (uint64_t key = 0; key < kKeySpace; ++key) {
    LaserDB::ReadResult result;
    ASSERT_TRUE(db_->Read(key, MakeColumnRange(1, kColumns), &result).ok());
    const auto it = model.find(key);
    const bool expect_found = it != model.end() && ModelRowVisible(it->second);
    ASSERT_EQ(result.found, expect_found) << "key " << key;
    if (expect_found) {
      for (int c = 0; c < kColumns; ++c) {
        ASSERT_EQ(result.values[c], it->second[c]) << "key " << key << " c" << c;
      }
    }
  }

  // Scan verification with a narrow projection.
  auto scan = db_->NewScan(0, kKeySpace, {2, 4});
  ASSERT_NE(scan, nullptr);
  uint64_t last_key = 0;
  bool first = true;
  uint64_t emitted = 0;
  for (; scan->Valid(); scan->Next()) {
    if (!first) {
      ASSERT_GT(scan->key(), last_key);  // strictly ascending
    }
    first = false;
    last_key = scan->key();
    const auto it = model.find(scan->key());
    ASSERT_NE(it, model.end());
    ASSERT_EQ(scan->values()[0], it->second[1]) << "key " << scan->key();
    ASSERT_EQ(scan->values()[1], it->second[3]) << "key " << scan->key();
    ++emitted;
  }
  ASSERT_TRUE(scan->status().ok());
  // Every model row with a value in columns 2 or 4 must have been emitted.
  uint64_t expected_emitted = 0;
  for (const auto& [key, row] : model) {
    if (row[1].has_value() || row[3].has_value()) ++expected_emitted;
  }
  EXPECT_EQ(emitted, expected_emitted);
}

INSTANTIATE_TEST_SUITE_P(
    DesignsAndSeeds, EngineModelSweep,
    ::testing::Values(SweepParam{0, 1}, SweepParam{0, 2}, SweepParam{1, 1},
                      SweepParam{1, 2}, SweepParam{2, 1}, SweepParam{2, 2},
                      SweepParam{2, 3}, SweepParam{3, 1}, SweepParam{3, 2}),
    [](const auto& info) {
      return DesignName(info.param.design) + "_seed" +
             std::to_string(info.param.seed);
    });

// ---------------------------------------------------------- bloom sweep --

class BloomFprSweep : public ::testing::TestWithParam<int> {};

TEST_P(BloomFprSweep, FalsePositiveRateShrinksWithBits) {
  const int bits = GetParam();
  BloomFilterBuilder builder(bits);
  for (uint64_t i = 0; i < 5000; ++i) builder.AddKey(EncodeKey64(i * 3));
  const std::string data = builder.Finish();
  BloomFilterReader reader((Slice(data)));

  // No false negatives, ever.
  for (uint64_t i = 0; i < 5000; ++i) {
    ASSERT_TRUE(reader.KeyMayMatch(EncodeKey64(i * 3)));
  }
  int fp = 0;
  const int probes = 5000;
  for (int i = 0; i < probes; ++i) {
    if (reader.KeyMayMatch(EncodeKey64(1000000 + i))) ++fp;
  }
  const double fpr = static_cast<double>(fp) / probes;
  // Loose theoretical envelope: (0.6185)^bits, doubled for slack.
  const double bound = 2.0 * std::pow(0.6185, bits) + 0.005;
  EXPECT_LT(fpr, bound) << "bits=" << bits << " fpr=" << fpr;
}

INSTANTIATE_TEST_SUITE_P(BitsPerKey, BloomFprSweep,
                         ::testing::Values(4, 6, 8, 10, 12, 16));

// -------------------------------------------------- key-order invariants --

class KeyOrderSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KeyOrderSweep, ScanOrderEqualsNumericOrderForRandomKeys) {
  auto env = NewMemEnv();
  LaserOptions options;
  options.env = env.get();
  options.path = "/order";
  options.schema = Schema::UniformInt32(2);
  options.num_levels = 3;
  options.cg_config = CgConfig::ColumnOnly(2, 3);
  options.write_buffer_size = 8 * 1024;
  options.level0_bytes = 16 * 1024;
  options.target_sst_size = 8 * 1024;
  std::unique_ptr<LaserDB> db;
  ASSERT_TRUE(LaserDB::Open(options, &db).ok());

  Random rng(GetParam());
  std::set<uint64_t> keys;
  for (int i = 0; i < 2000; ++i) {
    // Adversarial key patterns: clustered lows, huge highs, bit patterns.
    uint64_t key;
    switch (rng.Uniform(4)) {
      case 0: key = rng.Uniform(100); break;
      case 1: key = (1ull << 32) + rng.Uniform(100); break;
      case 2: key = rng.Next(); break;
      default: key = ~rng.Uniform(1000); break;
    }
    keys.insert(key);
    ASSERT_TRUE(db->Insert(key, {key & 0xffffffff, 1}).ok());
  }
  ASSERT_TRUE(db->CompactUntilStable().ok());

  auto scan = db->NewScan(0, ~0ull, {1});
  auto expected = keys.begin();
  for (; scan->Valid(); scan->Next(), ++expected) {
    ASSERT_NE(expected, keys.end());
    EXPECT_EQ(scan->key(), *expected);
  }
  EXPECT_EQ(expected, keys.end());
}

INSTANTIATE_TEST_SUITE_P(Seeds, KeyOrderSweep, ::testing::Range<uint64_t>(1, 6));

}  // namespace
}  // namespace laser
