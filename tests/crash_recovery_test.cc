// LaserDB-level crash-recovery tests: a deterministic scripted workload is
// killed at every mutating filesystem operation (WAL appends/syncs, SST
// flush writes, MANIFEST tmp-write + rename installs, compaction outputs and
// obsolete-file deletes), the durable image is restored, and the reopened
// database must hold exactly the acknowledged writes — nothing lost, nothing
// resurrected. Also covers crash-during-recovery and transient I/O errors.

#include <gtest/gtest.h>

#include <array>
#include <string>
#include <thread>
#include <vector>

#include "laser/laser_db.h"
#include "laser/sharded_laser_db.h"
#include "tests/recovery_harness.h"
#include "util/env_fault.h"

namespace laser {
namespace {

using test::Model;
using test::PhaseSpan;
using test::RecoveryHarness;
using test::ScriptOutcome;
using OpKind = FaultInjectionEnv::OpKind;
using OpRecord = FaultInjectionEnv::OpRecord;

bool HasSuffix(const std::string& name, const std::string& suffix) {
  return name.size() >= suffix.size() &&
         name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0;
}

size_t CountOps(const std::vector<OpRecord>& history, const PhaseSpan& span,
                OpKind kind, const std::string& suffix) {
  size_t count = 0;
  for (uint64_t i = span.begin; i < span.end && i < history.size(); ++i) {
    if (history[i].kind == kind && HasSuffix(history[i].fname, suffix)) ++count;
  }
  return count;
}

const PhaseSpan& FindPhase(const ScriptOutcome& outcome, const std::string& name) {
  for (const PhaseSpan& span : outcome.phases) {
    if (span.name == name) return span;
  }
  ADD_FAILURE() << "phase " << name << " missing";
  static PhaseSpan empty;
  return empty;
}

// ---------------------------------------------------------------------------
// FaultInjectionEnv semantics (pinned so the harness's assumptions hold).
// ---------------------------------------------------------------------------

TEST(FaultInjectionEnvTest, UnsyncedDataDropsSyncedDataSurvives) {
  auto base = NewMemEnv();
  FaultInjectionEnv env(base.get());

  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env.NewWritableFile("/f", &file).ok());
  ASSERT_TRUE(file->Append(Slice("durable")).ok());
  ASSERT_TRUE(file->Sync().ok());
  ASSERT_TRUE(file->Append(Slice("+volatile")).ok());
  ASSERT_TRUE(file->Close().ok());

  env.DropUnsyncedData();
  std::string data;
  ASSERT_TRUE(env.ReadFileToString("/f", &data).ok());
  EXPECT_EQ(data, "durable");
}

TEST(FaultInjectionEnvTest, NeverSyncedFileVanishesOnCrash) {
  auto base = NewMemEnv();
  FaultInjectionEnv env(base.get());

  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env.NewWritableFile("/f", &file).ok());
  ASSERT_TRUE(file->Append(Slice("lost")).ok());
  ASSERT_TRUE(file->Close().ok());  // close without sync is not durable

  env.DropUnsyncedData();
  EXPECT_FALSE(env.FileExists("/f"));
}

TEST(FaultInjectionEnvTest, RecreationWithoutSyncRevertsToOldContent) {
  auto base = NewMemEnv();
  FaultInjectionEnv env(base.get());

  ASSERT_TRUE(env.WriteStringToFile(Slice("v1"), "/f", /*sync=*/true).ok());
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env.NewWritableFile("/f", &file).ok());  // truncates, unsynced
  ASSERT_TRUE(file->Append(Slice("v2")).ok());
  ASSERT_TRUE(file->Close().ok());

  env.DropUnsyncedData();
  std::string data;
  ASSERT_TRUE(env.ReadFileToString("/f", &data).ok());
  EXPECT_EQ(data, "v1");
}

TEST(FaultInjectionEnvTest, RenameCarriesDurableContent) {
  auto base = NewMemEnv();
  FaultInjectionEnv env(base.get());

  ASSERT_TRUE(env.WriteStringToFile(Slice("old"), "/target", /*sync=*/true).ok());
  ASSERT_TRUE(env.WriteStringToFile(Slice("new"), "/tmp", /*sync=*/true).ok());
  ASSERT_TRUE(env.RenameFile("/tmp", "/target").ok());

  env.DropUnsyncedData();
  std::string data;
  ASSERT_TRUE(env.ReadFileToString("/target", &data).ok());
  EXPECT_EQ(data, "new");
  EXPECT_FALSE(env.FileExists("/tmp"));
}

TEST(FaultInjectionEnvTest, CrashAfterOpsKillsEverythingBeyondThreshold) {
  auto base = NewMemEnv();
  FaultInjectionEnv env(base.get());

  env.CrashAfterOps(2);  // create + append succeed, sync dies
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env.NewWritableFile("/f", &file).ok());
  ASSERT_TRUE(file->Append(Slice("x")).ok());
  EXPECT_FALSE(file->Sync().ok());
  EXPECT_TRUE(env.killed());
  EXPECT_FALSE(file->Append(Slice("y")).ok());
  std::unique_ptr<WritableFile> other;
  EXPECT_FALSE(env.NewWritableFile("/g", &other).ok());
  EXPECT_EQ(env.mutating_ops(), 2u);  // the killed ops were never admitted

  env.ClearFaults();
  EXPECT_TRUE(env.NewWritableFile("/g", &other).ok());
}

TEST(FaultInjectionEnvTest, FailOperationIsOneShot) {
  auto base = NewMemEnv();
  FaultInjectionEnv env(base.get());

  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env.NewWritableFile("/f", &file).ok());
  env.FailOperation(0);
  EXPECT_FALSE(file->Append(Slice("rejected")).ok());
  EXPECT_FALSE(env.killed());
  ASSERT_TRUE(file->Append(Slice("accepted")).ok());
  ASSERT_TRUE(file->Sync().ok());

  env.DropUnsyncedData();
  std::string data;
  ASSERT_TRUE(env.ReadFileToString("/f", &data).ok());
  EXPECT_EQ(data, "accepted");  // the rejected append never hit the file
}

// ---------------------------------------------------------------------------
// The crash matrix, over every WalSyncPolicy.
// ---------------------------------------------------------------------------

class CrashMatrixTest : public ::testing::TestWithParam<WalSyncPolicy> {};

TEST_P(CrashMatrixTest, CrashAtEveryFilesystemOperation) {
  const WalSyncPolicy policy = GetParam();

  // Profiling run: no faults, script must complete; record the op stream.
  uint64_t total_ops = 0;
  std::vector<OpRecord> history;
  ScriptOutcome baseline;
  {
    RecoveryHarness harness(policy);
    std::unique_ptr<LaserDB> db;
    ASSERT_TRUE(harness.Open(&db).ok());
    baseline = harness.RunScript(db.get());
    ASSERT_TRUE(baseline.completed);
    test::RecoveryHarness::VerifyMatchesModel(db.get(), baseline.model);
    // Capture the op count before the destructor's own close/cleanup ops:
    // the matrix below asserts every enumerated index crashes the *script*.
    total_ops = harness.fault_env()->mutating_ops();
    history = harness.fault_env()->history();
  }
  ASSERT_GT(total_ops, 100u);

  // The matrix must cover all four crash sites: WAL appends, memtable
  // flushes, manifest installs (the only renames), and CG compactions.
  const PhaseSpan& wal1 = FindPhase(baseline, "wal-append-1");
  EXPECT_GT(CountOps(history, wal1, OpKind::kAppend, ".wal"), 0u);
  if (policy == WalSyncPolicy::kSyncEveryWrite ||
      policy == WalSyncPolicy::kSyncEveryGroup) {
    // Acked == durable policies fsync inside the write path itself.
    EXPECT_GT(CountOps(history, wal1, OpKind::kSync, ".wal"), 0u);
  } else {
    EXPECT_EQ(CountOps(history, wal1, OpKind::kSync, ".wal"), 0u);
  }
  for (const char* phase : {"flush-1", "flush-2", "compaction"}) {
    const PhaseSpan& span = FindPhase(baseline, phase);
    EXPECT_GT(CountOps(history, span, OpKind::kSync, ".sst"), 0u) << phase;
    EXPECT_GT(CountOps(history, span, OpKind::kRename, "MANIFEST.tmp"), 0u)
        << phase << " saw no manifest install";
  }
  const PhaseSpan& compaction = FindPhase(baseline, "compaction");
  EXPECT_GT(CountOps(history, compaction, OpKind::kRemove, ".sst"), 0u)
      << "compaction deleted no obsolete files";

  // Crash at every op index (0 = the very first CreateDir of Open). Each
  // iteration replays the same deterministic prefix, dies, reboots, and the
  // reopened DB must hold exactly the acknowledged state (sync policies) or
  // a clean prefix of it (interval / no-sync policies).
  for (uint64_t k = 0; k < total_ops; ++k) {
    SCOPED_TRACE("crash after op " + std::to_string(k));
    RecoveryHarness harness(policy);
    harness.fault_env()->CrashAfterOps(k);

    ScriptOutcome outcome;
    {
      std::unique_ptr<LaserDB> db;
      if (harness.Open(&db).ok()) {
        outcome = harness.RunScript(db.get());
      }
    }
    EXPECT_FALSE(outcome.completed);  // every k < total_ops crashes somewhere

    harness.fault_env()->DropUnsyncedData();
    harness.fault_env()->ClearFaults();
    std::unique_ptr<LaserDB> db;
    ASSERT_TRUE(harness.Open(&db).ok());
    if (harness.acked_is_durable()) {
      test::RecoveryHarness::VerifyMatchesModel(db.get(), outcome.model);
    } else {
      test::RecoveryHarness::VerifyMatchesSomeSnapshot(db.get(), outcome.snapshots);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSyncPolicies, CrashMatrixTest,
    ::testing::Values(WalSyncPolicy::kSyncEveryWrite, WalSyncPolicy::kSyncEveryGroup,
                      WalSyncPolicy::kSyncIntervalMs, WalSyncPolicy::kNoSync),
    [](const ::testing::TestParamInfo<WalSyncPolicy>& info) {
      switch (info.param) {
        case WalSyncPolicy::kSyncEveryWrite:
          return "SyncEveryWrite";
        case WalSyncPolicy::kSyncEveryGroup:
          return "SyncEveryGroup";
        case WalSyncPolicy::kSyncIntervalMs:
          return "SyncIntervalMs";
        case WalSyncPolicy::kNoSync:
          return "NoSync";
      }
      return "Unknown";
    });

// ---------------------------------------------------------------------------
// Multi-writer group commit under crash: concurrent writers' batches share
// coalesced WAL records; kill the filesystem at every operation index.
// ---------------------------------------------------------------------------

TEST(GroupCommitCrashTest, MultiWriterCrashAtEveryOperation) {
  constexpr int kThreads = 4;
  constexpr int kWritesPerThread = 10;
  constexpr int kColumns = RecoveryHarness::kColumns;

  auto make_options = [](FaultInjectionEnv* fault) {
    LaserOptions options;
    options.env = fault;
    options.path = "/db";
    options.schema = Schema::UniformInt32(kColumns);
    options.num_levels = 4;
    options.cg_config = CgConfig::EquiWidth(kColumns, 4, 2);
    options.write_buffer_size = 1 << 20;  // no rotation mid-run
    options.background_threads = 1;
    options.disable_auto_compactions = true;
    options.wal_sync_policy = WalSyncPolicy::kSyncEveryGroup;
    return options;
  };
  auto key_of = [](int t, int i) { return 1000u * (t + 1) + i; };

  // Each thread inserts its own key range and stops at its first failure;
  // acked[t] counts its acknowledged prefix.
  auto run_writers = [&](LaserDB* db, std::array<int, kThreads>* acked) {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t, db] {
        for (int i = 0; i < kWritesPerThread; ++i) {
          const uint64_t key = key_of(t, i);
          if (!db->Insert(key, test::TestRow(key, kColumns)).ok()) break;
          (*acked)[t] = i + 1;
        }
      });
    }
    for (auto& thread : threads) thread.join();
  };

  // Profile an unfaulted run for the op-index upper bound. Thread schedules
  // differ run to run, but every faulted run below is killed at op k; runs
  // whose schedule finishes in fewer than k ops simply complete, which the
  // per-key checks handle.
  uint64_t total_ops = 0;
  {
    auto base = NewMemEnv();
    FaultInjectionEnv fault(base.get());
    std::unique_ptr<LaserDB> db;
    ASSERT_TRUE(LaserDB::Open(make_options(&fault), &db).ok());
    std::array<int, kThreads> acked{};
    run_writers(db.get(), &acked);
    for (int t = 0; t < kThreads; ++t) ASSERT_EQ(acked[t], kWritesPerThread);
    // Grouping must actually have happened at least once for this test to
    // mean anything: strictly fewer commit groups than writes means some
    // group carried several writers' batches. With 4 writers on one queue
    // and the leader's commit window, coalescing is effectively certain.
    EXPECT_LT(db->stats().wal_group_commits.load(),
              static_cast<uint64_t>(kThreads * kWritesPerThread));
    total_ops = fault.mutating_ops();
  }
  ASSERT_GT(total_ops, 20u);

  for (uint64_t k = 0; k < total_ops; ++k) {
    SCOPED_TRACE("crash after op " + std::to_string(k));
    auto base = NewMemEnv();
    FaultInjectionEnv fault(base.get());
    fault.CrashAfterOps(k);
    std::array<int, kThreads> acked{};
    {
      std::unique_ptr<LaserDB> db;
      if (LaserDB::Open(make_options(&fault), &db).ok()) {
        run_writers(db.get(), &acked);
      }
    }
    fault.DropUnsyncedData();
    fault.ClearFaults();
    std::unique_ptr<LaserDB> db;
    ASSERT_TRUE(LaserDB::Open(make_options(&fault), &db).ok());
    // kSyncEveryGroup acks only after the group's fsync: every acked write
    // must survive; every unacked write must be gone (a torn coalesced
    // record drops whole, and unsynced tails never ack anyone).
    const ColumnSet all = MakeColumnRange(1, kColumns);
    for (int t = 0; t < kThreads; ++t) {
      for (int i = 0; i < kWritesPerThread; ++i) {
        LaserDB::ReadResult result;
        ASSERT_TRUE(db->Read(key_of(t, i), all, &result).ok());
        if (i < acked[t]) {
          EXPECT_TRUE(result.found)
              << "acked write lost: thread " << t << " write " << i;
        } else {
          EXPECT_FALSE(result.found)
              << "unacked write resurrected: thread " << t << " write " << i;
        }
      }
    }
  }
}

// Crash once mid-compaction (at the manifest install), then crash again at
// every operation of the *recovery* itself, and require the third, clean
// recovery to still land on the acknowledged state: recovery must be
// idempotent.
TEST(CrashRecoveryTest, CrashDuringRecoveryAfterCrash) {
  // Locate the compaction phase's first manifest install in a profiling run.
  uint64_t first_crash = 0;
  {
    RecoveryHarness harness;
    std::unique_ptr<LaserDB> db;
    ASSERT_TRUE(harness.Open(&db).ok());
    ScriptOutcome baseline = harness.RunScript(db.get());
    ASSERT_TRUE(baseline.completed);
    db.reset();
    const PhaseSpan& span = FindPhase(baseline, "compaction");
    const auto history = harness.fault_env()->history();
    for (uint64_t i = span.begin; i < span.end; ++i) {
      if (history[i].kind == OpKind::kRename) {
        first_crash = i;
        break;
      }
    }
    ASSERT_GT(first_crash, 0u);
  }

  // First crash; keep the durable image and the acknowledged model.
  RecoveryHarness harness;
  harness.fault_env()->CrashAfterOps(first_crash);
  ScriptOutcome outcome;
  {
    std::unique_ptr<LaserDB> db;
    ASSERT_TRUE(harness.Open(&db).ok());
    outcome = harness.RunScript(db.get());
    EXPECT_FALSE(outcome.completed);
  }
  harness.fault_env()->DropUnsyncedData();
  const FaultInjectionEnv::DurableState image =
      harness.fault_env()->SnapshotDurableState();

  // Profile how many ops one clean recovery performs from this image.
  harness.fault_env()->ClearFaults();
  const uint64_t before = harness.fault_env()->mutating_ops();
  {
    std::unique_ptr<LaserDB> db;
    ASSERT_TRUE(harness.Open(&db).ok());
    test::RecoveryHarness::VerifyMatchesModel(db.get(), outcome.model);
  }
  const uint64_t recovery_ops = harness.fault_env()->mutating_ops() - before;
  ASSERT_GT(recovery_ops, 0u);

  // Second crash at every recovery op, then a clean third recovery.
  for (uint64_t j = 0; j < recovery_ops; ++j) {
    SCOPED_TRACE("second crash after recovery op " + std::to_string(j));
    harness.fault_env()->RestoreDurableState(image);
    harness.fault_env()->ClearFaults();
    harness.fault_env()->CrashAfterOps(j);
    {
      std::unique_ptr<LaserDB> db;
      harness.Open(&db);  // usually fails mid-recovery; either way we crash
    }
    harness.fault_env()->DropUnsyncedData();
    harness.fault_env()->ClearFaults();
    std::unique_ptr<LaserDB> db;
    ASSERT_TRUE(harness.Open(&db).ok());
    test::RecoveryHarness::VerifyMatchesModel(db.get(), outcome.model);
  }
}

// ---------------------------------------------------------------------------
// Sharded crash matrix: cross-shard WriteBatches through the two-phase
// coordinator (prepare on every touched shard, commit record in txn.log),
// killed at every filesystem operation. Recovery must be all-or-nothing per
// batch: acknowledged batches fully visible on both shards, unacknowledged
// ones fully invisible (presumed abort) — never a half-applied batch.
// ---------------------------------------------------------------------------

class ShardedCrashHarness {
 public:
  static constexpr int kColumns = 4;
  static constexpr uint64_t kMaxKey = 64;  // 2 shards: split at 32

  ShardedCrashHarness() : base_(NewMemEnv()), fault_(base_.get()) {}

  FaultInjectionEnv* fault_env() { return &fault_; }

  ShardedLaserOptions MakeOptions() {
    ShardedLaserOptions options;
    LaserOptions& base = options.base;
    base.env = &fault_;
    base.path = "/sharded";
    base.schema = Schema::UniformInt32(kColumns);
    base.num_levels = 4;
    base.size_ratio = 2;
    base.cg_config = CgConfig::EquiWidth(kColumns, 4, 2);
    base.write_buffer_size = 1 << 20;  // never rotates on its own
    base.level0_bytes = 2 * 1024;
    base.level0_file_compaction_trigger = 2;
    base.target_sst_size = 2 * 1024;
    base.block_size = 1024;
    base.background_threads = 1;
    base.disable_auto_compactions = true;
    // Acked == durable: singles fsync per write, prepares force fsync anyway,
    // and the commit record is fsynced by the coordinator — so a crash must
    // preserve exactly the acknowledged model.
    base.wal_sync_policy = WalSyncPolicy::kSyncEveryWrite;
    base.wal_sync_interval_ms = 60 * 60 * 1000;
    options.num_shards = 2;
    options.key_domain = kMaxKey;
    return options;
  }

  Status Open(std::unique_ptr<ShardedLaserDB>* db) {
    return ShardedLaserDB::Open(MakeOptions(), db);
  }

  struct Outcome {
    Model model;  // acknowledged state only
    bool completed = false;
  };

  /// Single-writer deterministic script: cross-shard batches (shard 0 owns
  /// keys < 32, shard 1 the rest) interleaved with routed singles and a
  /// flush. The model advances only on acknowledged ops.
  Outcome RunScript(ShardedLaserDB* db) {
    Outcome out;
    auto row_of = [](uint64_t key) {
      test::RowState row(kColumns);
      for (int c = 1; c <= kColumns; ++c) row[c - 1] = key * 100 + c;
      return row;
    };

    // Cross-shard inserts, one key per side, committed atomically.
    for (uint64_t j = 0; j < 6; ++j) {
      WriteBatch batch;
      batch.Insert(1 + j, test::TestRow(1 + j, kColumns));
      batch.Insert(33 + j, test::TestRow(33 + j, kColumns));
      if (!db->Write(batch).ok()) return out;
      out.model[1 + j] = row_of(1 + j);
      out.model[33 + j] = row_of(33 + j);
    }

    // Routed single-key writes ride each shard's ordinary group commit.
    for (uint64_t key : {12, 13, 44}) {
      if (!db->Insert(key, test::TestRow(key, kColumns)).ok()) return out;
      out.model[key] = row_of(key);
    }

    // A mixed cross-shard batch: update + tombstone + fresh inserts.
    {
      WriteBatch batch;
      batch.Update(1, {{2, 9002}});
      batch.Delete(33);
      batch.Insert(20, test::TestRow(20, kColumns));
      batch.Insert(50, test::TestRow(50, kColumns));
      if (!db->Write(batch).ok()) return out;
      out.model[1][1] = 9002;
      out.model.erase(33);
      out.model[20] = row_of(20);
      out.model[50] = row_of(50);
    }

    // Flush both shards (memtable -> L0, manifest install, WAL delete),
    // then commit more cross-shard batches on the flushed tree.
    if (!db->Flush().ok()) return out;
    for (uint64_t j = 0; j < 3; ++j) {
      WriteBatch batch;
      batch.Insert(24 + j, test::TestRow(24 + j, kColumns));
      batch.Insert(54 + j, test::TestRow(54 + j, kColumns));
      batch.Update(34 + j, {{4, 7000 + j}});
      if (!db->Write(batch).ok()) return out;
      out.model[24 + j] = row_of(24 + j);
      out.model[54 + j] = row_of(54 + j);
      out.model[34 + j][3] = 7000 + j;
    }

    out.completed = true;
    return out;
  }

  /// Point-reads the whole key universe and runs one fan-out scan; both must
  /// match `model` exactly.
  static void VerifyMatchesModel(ShardedLaserDB* db, const Model& model) {
    const ColumnSet all = MakeColumnRange(1, kColumns);
    for (uint64_t key = 1; key <= kMaxKey; ++key) {
      LaserDB::ReadResult result;
      ASSERT_TRUE(db->Read(key, all, &result).ok()) << "key " << key;
      auto it = model.find(key);
      if (it == model.end()) {
        EXPECT_FALSE(result.found) << "unacked key " << key << " resurrected";
        continue;
      }
      ASSERT_TRUE(result.found) << "acked key " << key << " lost";
      for (int c = 0; c < kColumns; ++c) {
        ASSERT_EQ(result.values[c], it->second[c])
            << "key " << key << " column " << (c + 1);
      }
    }
    auto scan = db->NewScan(1, kMaxKey, all);
    ASSERT_NE(scan, nullptr);
    auto it = model.begin();
    for (; scan->Valid(); scan->Next(), ++it) {
      ASSERT_NE(it, model.end()) << "scan emitted extra key " << scan->key();
      EXPECT_EQ(scan->key(), it->first);
      for (int c = 0; c < kColumns; ++c) {
        ASSERT_EQ(scan->values()[c], it->second[c])
            << "scan key " << it->first << " column " << (c + 1);
      }
    }
    ASSERT_TRUE(scan->status().ok());
    EXPECT_EQ(it, model.end());
  }

 private:
  std::unique_ptr<Env> base_;
  FaultInjectionEnv fault_;
};

TEST(ShardedCrashMatrixTest, CrossShardBatchesAtomicAtEveryOperation) {
  // Profiling run: no faults; pin down the op stream and check it actually
  // exercises the protocol (prepared-group WAL syncs, commit records).
  uint64_t total_ops = 0;
  {
    ShardedCrashHarness harness;
    std::unique_ptr<ShardedLaserDB> db;
    ASSERT_TRUE(harness.Open(&db).ok());
    ShardedCrashHarness::Outcome outcome = harness.RunScript(db.get());
    ASSERT_TRUE(outcome.completed);
    ShardedCrashHarness::VerifyMatchesModel(db.get(), outcome.model);
    total_ops = harness.fault_env()->mutating_ops();
    size_t txn_syncs = 0;
    size_t wal_syncs = 0;
    for (const OpRecord& op : harness.fault_env()->history()) {
      if (op.kind == OpKind::kSync && HasSuffix(op.fname, "txn.log")) {
        ++txn_syncs;
      }
      if (op.kind == OpKind::kSync && HasSuffix(op.fname, ".wal")) {
        ++wal_syncs;
      }
    }
    EXPECT_EQ(txn_syncs, 10u);  // one commit point per cross-shard batch
    // Two forced prepare syncs per cross-shard batch plus the routed singles.
    EXPECT_GE(wal_syncs, 2 * txn_syncs + 3);
  }
  ASSERT_GT(total_ops, 50u);

  for (uint64_t k = 0; k < total_ops; ++k) {
    SCOPED_TRACE("crash after op " + std::to_string(k));
    ShardedCrashHarness harness;
    harness.fault_env()->CrashAfterOps(k);
    ShardedCrashHarness::Outcome outcome;
    {
      std::unique_ptr<ShardedLaserDB> db;
      if (harness.Open(&db).ok()) {
        outcome = harness.RunScript(db.get());
      }
    }
    EXPECT_FALSE(outcome.completed);
    harness.fault_env()->DropUnsyncedData();
    harness.fault_env()->ClearFaults();
    std::unique_ptr<ShardedLaserDB> db;
    ASSERT_TRUE(harness.Open(&db).ok());
    ShardedCrashHarness::VerifyMatchesModel(db.get(), outcome.model);
  }
}

// Crash exactly at the commit point (the first coordinator-log append):
// both shards hold a durable prepared fragment with no commit record. Then
// crash the recovery itself at every operation. Every clean reopen must land
// on exactly the acked state — the undecided fragments must never surface,
// no matter how recovery is interrupted (presumed abort is idempotent).
TEST(ShardedCrashMatrixTest, RecoveryWithUndecidedPreparedBatchIsIdempotent) {
  uint64_t first_txn_append = 0;
  {
    ShardedCrashHarness harness;
    std::unique_ptr<ShardedLaserDB> db;
    ASSERT_TRUE(harness.Open(&db).ok());
    ShardedCrashHarness::Outcome outcome = harness.RunScript(db.get());
    ASSERT_TRUE(outcome.completed);
    const auto history = harness.fault_env()->history();
    for (uint64_t i = 0; i < history.size(); ++i) {
      if (history[i].kind == OpKind::kAppend &&
          HasSuffix(history[i].fname, "txn.log")) {
        first_txn_append = i;
        break;
      }
    }
    ASSERT_GT(first_txn_append, 0u);
  }

  ShardedCrashHarness harness;
  harness.fault_env()->CrashAfterOps(first_txn_append);
  ShardedCrashHarness::Outcome outcome;
  {
    std::unique_ptr<ShardedLaserDB> db;
    ASSERT_TRUE(harness.Open(&db).ok());
    outcome = harness.RunScript(db.get());
    EXPECT_FALSE(outcome.completed);
  }
  harness.fault_env()->DropUnsyncedData();
  const FaultInjectionEnv::DurableState image =
      harness.fault_env()->SnapshotDurableState();

  // Profile how many ops one clean recovery performs from this image.
  harness.fault_env()->ClearFaults();
  const uint64_t before = harness.fault_env()->mutating_ops();
  {
    std::unique_ptr<ShardedLaserDB> db;
    ASSERT_TRUE(harness.Open(&db).ok());
    ShardedCrashHarness::VerifyMatchesModel(db.get(), outcome.model);
  }
  const uint64_t recovery_ops = harness.fault_env()->mutating_ops() - before;
  ASSERT_GT(recovery_ops, 0u);

  for (uint64_t j = 0; j < recovery_ops; ++j) {
    SCOPED_TRACE("second crash after recovery op " + std::to_string(j));
    harness.fault_env()->RestoreDurableState(image);
    harness.fault_env()->ClearFaults();
    harness.fault_env()->CrashAfterOps(j);
    {
      std::unique_ptr<ShardedLaserDB> db;
      harness.Open(&db);  // usually dies mid-recovery; either way we crash
    }
    harness.fault_env()->DropUnsyncedData();
    harness.fault_env()->ClearFaults();
    std::unique_ptr<ShardedLaserDB> db;
    ASSERT_TRUE(harness.Open(&db).ok());
    ShardedCrashHarness::VerifyMatchesModel(db.get(), outcome.model);
  }
}

// ---------------------------------------------------------------------------
// Transient I/O errors (no crash): the engine must fail safe.
// ---------------------------------------------------------------------------

// A failed WAL sync leaves an unacknowledged record in the log tail. If the
// engine kept writing, the next successful sync would make that record
// durable and it would resurrect on replay — so the engine must go
// read-only. The poisoning must hold under both acked==durable policies
// (with one scripted writer, kSyncEveryGroup issues the same append+sync
// sequence as kSyncEveryWrite).
TEST(CrashRecoveryTest, WalSyncFailurePoisonsWrites) {
  for (WalSyncPolicy policy :
       {WalSyncPolicy::kSyncEveryWrite, WalSyncPolicy::kSyncEveryGroup}) {
    SCOPED_TRACE(policy == WalSyncPolicy::kSyncEveryWrite ? "kSyncEveryWrite"
                                                          : "kSyncEveryGroup");
    RecoveryHarness harness(policy);
    std::unique_ptr<LaserDB> db;
    ASSERT_TRUE(harness.Open(&db).ok());

    ASSERT_TRUE(db->Insert(1, test::TestRow(1, RecoveryHarness::kColumns)).ok());

    // Each write is append (op +0) then sync (op +1): fail the next sync.
    harness.fault_env()->FailOperation(1);
    EXPECT_FALSE(db->Insert(2, test::TestRow(2, RecoveryHarness::kColumns)).ok());
    // Poisoned: later writes must not be accepted (their sync would have
    // made the failed record durable).
    EXPECT_FALSE(db->Insert(3, test::TestRow(3, RecoveryHarness::kColumns)).ok());
    // Reads still work.
    LaserDB::ReadResult result;
    const ColumnSet all = MakeColumnRange(1, RecoveryHarness::kColumns);
    ASSERT_TRUE(db->Read(1, all, &result).ok());
    EXPECT_TRUE(result.found);

    db.reset();
    harness.fault_env()->DropUnsyncedData();
    harness.fault_env()->ClearFaults();
    ASSERT_TRUE(harness.Open(&db).ok());

    Model model;
    test::RowState row(RecoveryHarness::kColumns);
    for (int c = 1; c <= RecoveryHarness::kColumns; ++c) row[c - 1] = 100 + c;
    model[1] = row;
    test::RecoveryHarness::VerifyMatchesModel(db.get(), model);
  }
}

// A flush whose SST sync fails must not delete the WAL; a reopen recovers
// every acknowledged write from it.
TEST(CrashRecoveryTest, FlushSyncFailureKeepsWalForRecovery) {
  // Profile the op offset of the flush's first SST sync.
  uint64_t sst_sync_offset = 0;
  {
    RecoveryHarness harness;
    std::unique_ptr<LaserDB> db;
    ASSERT_TRUE(harness.Open(&db).ok());
    for (uint64_t key = 1; key <= 10; ++key) {
      ASSERT_TRUE(db->Insert(key, test::TestRow(key, RecoveryHarness::kColumns)).ok());
    }
    const uint64_t before = harness.fault_env()->mutating_ops();
    ASSERT_TRUE(db->Flush().ok());
    const auto history = harness.fault_env()->history();
    for (uint64_t i = before; i < history.size(); ++i) {
      if (history[i].kind == OpKind::kSync && HasSuffix(history[i].fname, ".sst")) {
        sst_sync_offset = i - before;
        break;
      }
    }
    ASSERT_GT(sst_sync_offset, 0u);
  }

  RecoveryHarness harness;
  std::unique_ptr<LaserDB> db;
  ASSERT_TRUE(harness.Open(&db).ok());
  Model model;
  for (uint64_t key = 1; key <= 10; ++key) {
    ASSERT_TRUE(db->Insert(key, test::TestRow(key, RecoveryHarness::kColumns)).ok());
    test::RowState row(RecoveryHarness::kColumns);
    for (int c = 1; c <= RecoveryHarness::kColumns; ++c) row[c - 1] = key * 100 + c;
    model[key] = row;
  }
  harness.fault_env()->FailOperation(sst_sync_offset);
  EXPECT_FALSE(db->Flush().ok());
  // The background error poisons writes.
  EXPECT_FALSE(db->Insert(11, test::TestRow(11, RecoveryHarness::kColumns)).ok());

  db.reset();
  harness.fault_env()->DropUnsyncedData();
  harness.fault_env()->ClearFaults();
  ASSERT_TRUE(harness.Open(&db).ok());
  test::RecoveryHarness::VerifyMatchesModel(db.get(), model);
}

}  // namespace
}  // namespace laser
