// LaserDB-level crash-recovery tests: a deterministic scripted workload is
// killed at every mutating filesystem operation (WAL appends/syncs, SST
// flush writes, MANIFEST tmp-write + rename installs, compaction outputs and
// obsolete-file deletes), the durable image is restored, and the reopened
// database must hold exactly the acknowledged writes — nothing lost, nothing
// resurrected. Also covers crash-during-recovery and transient I/O errors.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "laser/laser_db.h"
#include "tests/recovery_harness.h"
#include "util/env_fault.h"

namespace laser {
namespace {

using test::Model;
using test::PhaseSpan;
using test::RecoveryHarness;
using test::ScriptOutcome;
using OpKind = FaultInjectionEnv::OpKind;
using OpRecord = FaultInjectionEnv::OpRecord;

bool HasSuffix(const std::string& name, const std::string& suffix) {
  return name.size() >= suffix.size() &&
         name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0;
}

size_t CountOps(const std::vector<OpRecord>& history, const PhaseSpan& span,
                OpKind kind, const std::string& suffix) {
  size_t count = 0;
  for (uint64_t i = span.begin; i < span.end && i < history.size(); ++i) {
    if (history[i].kind == kind && HasSuffix(history[i].fname, suffix)) ++count;
  }
  return count;
}

const PhaseSpan& FindPhase(const ScriptOutcome& outcome, const std::string& name) {
  for (const PhaseSpan& span : outcome.phases) {
    if (span.name == name) return span;
  }
  ADD_FAILURE() << "phase " << name << " missing";
  static PhaseSpan empty;
  return empty;
}

// ---------------------------------------------------------------------------
// FaultInjectionEnv semantics (pinned so the harness's assumptions hold).
// ---------------------------------------------------------------------------

TEST(FaultInjectionEnvTest, UnsyncedDataDropsSyncedDataSurvives) {
  auto base = NewMemEnv();
  FaultInjectionEnv env(base.get());

  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env.NewWritableFile("/f", &file).ok());
  ASSERT_TRUE(file->Append(Slice("durable")).ok());
  ASSERT_TRUE(file->Sync().ok());
  ASSERT_TRUE(file->Append(Slice("+volatile")).ok());
  ASSERT_TRUE(file->Close().ok());

  env.DropUnsyncedData();
  std::string data;
  ASSERT_TRUE(env.ReadFileToString("/f", &data).ok());
  EXPECT_EQ(data, "durable");
}

TEST(FaultInjectionEnvTest, NeverSyncedFileVanishesOnCrash) {
  auto base = NewMemEnv();
  FaultInjectionEnv env(base.get());

  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env.NewWritableFile("/f", &file).ok());
  ASSERT_TRUE(file->Append(Slice("lost")).ok());
  ASSERT_TRUE(file->Close().ok());  // close without sync is not durable

  env.DropUnsyncedData();
  EXPECT_FALSE(env.FileExists("/f"));
}

TEST(FaultInjectionEnvTest, RecreationWithoutSyncRevertsToOldContent) {
  auto base = NewMemEnv();
  FaultInjectionEnv env(base.get());

  ASSERT_TRUE(env.WriteStringToFile(Slice("v1"), "/f", /*sync=*/true).ok());
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env.NewWritableFile("/f", &file).ok());  // truncates, unsynced
  ASSERT_TRUE(file->Append(Slice("v2")).ok());
  ASSERT_TRUE(file->Close().ok());

  env.DropUnsyncedData();
  std::string data;
  ASSERT_TRUE(env.ReadFileToString("/f", &data).ok());
  EXPECT_EQ(data, "v1");
}

TEST(FaultInjectionEnvTest, RenameCarriesDurableContent) {
  auto base = NewMemEnv();
  FaultInjectionEnv env(base.get());

  ASSERT_TRUE(env.WriteStringToFile(Slice("old"), "/target", /*sync=*/true).ok());
  ASSERT_TRUE(env.WriteStringToFile(Slice("new"), "/tmp", /*sync=*/true).ok());
  ASSERT_TRUE(env.RenameFile("/tmp", "/target").ok());

  env.DropUnsyncedData();
  std::string data;
  ASSERT_TRUE(env.ReadFileToString("/target", &data).ok());
  EXPECT_EQ(data, "new");
  EXPECT_FALSE(env.FileExists("/tmp"));
}

TEST(FaultInjectionEnvTest, CrashAfterOpsKillsEverythingBeyondThreshold) {
  auto base = NewMemEnv();
  FaultInjectionEnv env(base.get());

  env.CrashAfterOps(2);  // create + append succeed, sync dies
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env.NewWritableFile("/f", &file).ok());
  ASSERT_TRUE(file->Append(Slice("x")).ok());
  EXPECT_FALSE(file->Sync().ok());
  EXPECT_TRUE(env.killed());
  EXPECT_FALSE(file->Append(Slice("y")).ok());
  std::unique_ptr<WritableFile> other;
  EXPECT_FALSE(env.NewWritableFile("/g", &other).ok());
  EXPECT_EQ(env.mutating_ops(), 2u);  // the killed ops were never admitted

  env.ClearFaults();
  EXPECT_TRUE(env.NewWritableFile("/g", &other).ok());
}

TEST(FaultInjectionEnvTest, FailOperationIsOneShot) {
  auto base = NewMemEnv();
  FaultInjectionEnv env(base.get());

  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env.NewWritableFile("/f", &file).ok());
  env.FailOperation(0);
  EXPECT_FALSE(file->Append(Slice("rejected")).ok());
  EXPECT_FALSE(env.killed());
  ASSERT_TRUE(file->Append(Slice("accepted")).ok());
  ASSERT_TRUE(file->Sync().ok());

  env.DropUnsyncedData();
  std::string data;
  ASSERT_TRUE(env.ReadFileToString("/f", &data).ok());
  EXPECT_EQ(data, "accepted");  // the rejected append never hit the file
}

// ---------------------------------------------------------------------------
// The crash matrix.
// ---------------------------------------------------------------------------

TEST(CrashRecoveryTest, CrashAtEveryFilesystemOperation) {
  // Profiling run: no faults, script must complete; record the op stream.
  uint64_t total_ops = 0;
  std::vector<OpRecord> history;
  ScriptOutcome baseline;
  {
    RecoveryHarness harness;
    std::unique_ptr<LaserDB> db;
    ASSERT_TRUE(harness.Open(&db).ok());
    baseline = harness.RunScript(db.get());
    ASSERT_TRUE(baseline.completed);
    test::RecoveryHarness::VerifyMatchesModel(db.get(), baseline.model);
    // Capture the op count before the destructor's own close/cleanup ops:
    // the matrix below asserts every enumerated index crashes the *script*.
    total_ops = harness.fault_env()->mutating_ops();
    history = harness.fault_env()->history();
  }
  ASSERT_GT(total_ops, 100u);

  // The matrix must cover all four crash sites: WAL appends, memtable
  // flushes, manifest installs (the only renames), and CG compactions.
  const PhaseSpan& wal1 = FindPhase(baseline, "wal-append-1");
  EXPECT_GT(CountOps(history, wal1, OpKind::kAppend, ".wal"), 0u);
  EXPECT_GT(CountOps(history, wal1, OpKind::kSync, ".wal"), 0u);
  for (const char* phase : {"flush-1", "flush-2", "compaction"}) {
    const PhaseSpan& span = FindPhase(baseline, phase);
    EXPECT_GT(CountOps(history, span, OpKind::kSync, ".sst"), 0u) << phase;
    EXPECT_GT(CountOps(history, span, OpKind::kRename, "MANIFEST.tmp"), 0u)
        << phase << " saw no manifest install";
  }
  const PhaseSpan& compaction = FindPhase(baseline, "compaction");
  EXPECT_GT(CountOps(history, compaction, OpKind::kRemove, ".sst"), 0u)
      << "compaction deleted no obsolete files";

  // Crash at every op index (0 = the very first CreateDir of Open). Each
  // iteration replays the same deterministic prefix, dies, reboots, and the
  // reopened DB must hold exactly the acknowledged state.
  for (uint64_t k = 0; k < total_ops; ++k) {
    SCOPED_TRACE("crash after op " + std::to_string(k));
    RecoveryHarness harness;
    harness.fault_env()->CrashAfterOps(k);

    ScriptOutcome outcome;
    {
      std::unique_ptr<LaserDB> db;
      if (harness.Open(&db).ok()) {
        outcome = harness.RunScript(db.get());
      }
    }
    EXPECT_FALSE(outcome.completed);  // every k < total_ops crashes somewhere

    harness.fault_env()->DropUnsyncedData();
    harness.fault_env()->ClearFaults();
    std::unique_ptr<LaserDB> db;
    ASSERT_TRUE(harness.Open(&db).ok());
    test::RecoveryHarness::VerifyMatchesModel(db.get(), outcome.model);
  }
}

// Crash once mid-compaction (at the manifest install), then crash again at
// every operation of the *recovery* itself, and require the third, clean
// recovery to still land on the acknowledged state: recovery must be
// idempotent.
TEST(CrashRecoveryTest, CrashDuringRecoveryAfterCrash) {
  // Locate the compaction phase's first manifest install in a profiling run.
  uint64_t first_crash = 0;
  {
    RecoveryHarness harness;
    std::unique_ptr<LaserDB> db;
    ASSERT_TRUE(harness.Open(&db).ok());
    ScriptOutcome baseline = harness.RunScript(db.get());
    ASSERT_TRUE(baseline.completed);
    db.reset();
    const PhaseSpan& span = FindPhase(baseline, "compaction");
    const auto history = harness.fault_env()->history();
    for (uint64_t i = span.begin; i < span.end; ++i) {
      if (history[i].kind == OpKind::kRename) {
        first_crash = i;
        break;
      }
    }
    ASSERT_GT(first_crash, 0u);
  }

  // First crash; keep the durable image and the acknowledged model.
  RecoveryHarness harness;
  harness.fault_env()->CrashAfterOps(first_crash);
  ScriptOutcome outcome;
  {
    std::unique_ptr<LaserDB> db;
    ASSERT_TRUE(harness.Open(&db).ok());
    outcome = harness.RunScript(db.get());
    EXPECT_FALSE(outcome.completed);
  }
  harness.fault_env()->DropUnsyncedData();
  const FaultInjectionEnv::DurableState image =
      harness.fault_env()->SnapshotDurableState();

  // Profile how many ops one clean recovery performs from this image.
  harness.fault_env()->ClearFaults();
  const uint64_t before = harness.fault_env()->mutating_ops();
  {
    std::unique_ptr<LaserDB> db;
    ASSERT_TRUE(harness.Open(&db).ok());
    test::RecoveryHarness::VerifyMatchesModel(db.get(), outcome.model);
  }
  const uint64_t recovery_ops = harness.fault_env()->mutating_ops() - before;
  ASSERT_GT(recovery_ops, 0u);

  // Second crash at every recovery op, then a clean third recovery.
  for (uint64_t j = 0; j < recovery_ops; ++j) {
    SCOPED_TRACE("second crash after recovery op " + std::to_string(j));
    harness.fault_env()->RestoreDurableState(image);
    harness.fault_env()->ClearFaults();
    harness.fault_env()->CrashAfterOps(j);
    {
      std::unique_ptr<LaserDB> db;
      harness.Open(&db);  // usually fails mid-recovery; either way we crash
    }
    harness.fault_env()->DropUnsyncedData();
    harness.fault_env()->ClearFaults();
    std::unique_ptr<LaserDB> db;
    ASSERT_TRUE(harness.Open(&db).ok());
    test::RecoveryHarness::VerifyMatchesModel(db.get(), outcome.model);
  }
}

// ---------------------------------------------------------------------------
// Transient I/O errors (no crash): the engine must fail safe.
// ---------------------------------------------------------------------------

// A failed WAL sync leaves an unacknowledged record in the log tail. If the
// engine kept writing, the next successful sync would make that record
// durable and it would resurrect on replay — so the engine must go read-only.
TEST(CrashRecoveryTest, WalSyncFailurePoisonsWrites) {
  RecoveryHarness harness;
  std::unique_ptr<LaserDB> db;
  ASSERT_TRUE(harness.Open(&db).ok());

  ASSERT_TRUE(db->Insert(1, test::TestRow(1, RecoveryHarness::kColumns)).ok());

  // Each write is append (op +0) then sync (op +1): fail the next sync.
  harness.fault_env()->FailOperation(1);
  EXPECT_FALSE(db->Insert(2, test::TestRow(2, RecoveryHarness::kColumns)).ok());
  // Poisoned: later writes must not be accepted (their sync would have made
  // the failed record durable).
  EXPECT_FALSE(db->Insert(3, test::TestRow(3, RecoveryHarness::kColumns)).ok());
  // Reads still work.
  LaserDB::ReadResult result;
  const ColumnSet all = MakeColumnRange(1, RecoveryHarness::kColumns);
  ASSERT_TRUE(db->Read(1, all, &result).ok());
  EXPECT_TRUE(result.found);

  db.reset();
  harness.fault_env()->DropUnsyncedData();
  harness.fault_env()->ClearFaults();
  ASSERT_TRUE(harness.Open(&db).ok());

  Model model;
  test::RowState row(RecoveryHarness::kColumns);
  for (int c = 1; c <= RecoveryHarness::kColumns; ++c) row[c - 1] = 100 + c;
  model[1] = row;
  test::RecoveryHarness::VerifyMatchesModel(db.get(), model);
}

// A flush whose SST sync fails must not delete the WAL; a reopen recovers
// every acknowledged write from it.
TEST(CrashRecoveryTest, FlushSyncFailureKeepsWalForRecovery) {
  // Profile the op offset of the flush's first SST sync.
  uint64_t sst_sync_offset = 0;
  {
    RecoveryHarness harness;
    std::unique_ptr<LaserDB> db;
    ASSERT_TRUE(harness.Open(&db).ok());
    for (uint64_t key = 1; key <= 10; ++key) {
      ASSERT_TRUE(db->Insert(key, test::TestRow(key, RecoveryHarness::kColumns)).ok());
    }
    const uint64_t before = harness.fault_env()->mutating_ops();
    ASSERT_TRUE(db->Flush().ok());
    const auto history = harness.fault_env()->history();
    for (uint64_t i = before; i < history.size(); ++i) {
      if (history[i].kind == OpKind::kSync && HasSuffix(history[i].fname, ".sst")) {
        sst_sync_offset = i - before;
        break;
      }
    }
    ASSERT_GT(sst_sync_offset, 0u);
  }

  RecoveryHarness harness;
  std::unique_ptr<LaserDB> db;
  ASSERT_TRUE(harness.Open(&db).ok());
  Model model;
  for (uint64_t key = 1; key <= 10; ++key) {
    ASSERT_TRUE(db->Insert(key, test::TestRow(key, RecoveryHarness::kColumns)).ok());
    test::RowState row(RecoveryHarness::kColumns);
    for (int c = 1; c <= RecoveryHarness::kColumns; ++c) row[c - 1] = key * 100 + c;
    model[key] = row;
  }
  harness.fault_env()->FailOperation(sst_sync_offset);
  EXPECT_FALSE(db->Flush().ok());
  // The background error poisons writes.
  EXPECT_FALSE(db->Insert(11, test::TestRow(11, RecoveryHarness::kColumns)).ok());

  db.reset();
  harness.fault_env()->DropUnsyncedData();
  harness.fault_env()->ClearFaults();
  ASSERT_TRUE(harness.Open(&db).ok());
  test::RecoveryHarness::VerifyMatchesModel(db.get(), model);
}

}  // namespace
}  // namespace laser
