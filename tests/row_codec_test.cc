// RowCodec tests: presence bitmaps, partial rows, merge semantics (§4.2),
// projection for layout-changing compaction (§4.4), column-set helpers.

#include <gtest/gtest.h>

#include "laser/row_codec.h"
#include "laser/schema.h"
#include "util/random.h"

namespace laser {
namespace {

class RowCodecTest : public ::testing::Test {
 protected:
  RowCodecTest() : schema_(Schema::UniformInt32(8)), codec_(&schema_) {}

  Schema schema_;
  RowCodec codec_;
};

TEST_F(RowCodecTest, FullRowRoundTrip) {
  const ColumnSet cg = MakeColumnRange(1, 8);
  std::vector<ColumnValuePair> values;
  for (int c = 1; c <= 8; ++c) values.push_back({c, static_cast<uint64_t>(c * 11)});
  const std::string encoded = codec_.Encode(cg, values);
  EXPECT_TRUE(codec_.IsComplete(cg, Slice(encoded)));
  EXPECT_EQ(codec_.PresentCount(cg, Slice(encoded)), 8);

  std::vector<ColumnValuePair> decoded;
  ASSERT_TRUE(codec_.Decode(cg, Slice(encoded), &decoded).ok());
  EXPECT_EQ(decoded, values);
}

TEST_F(RowCodecTest, PartialRowRoundTrip) {
  const ColumnSet cg = MakeColumnRange(1, 8);
  std::vector<ColumnValuePair> values = {{2, 22}, {5, 55}};
  const std::string encoded = codec_.Encode(cg, values);
  EXPECT_FALSE(codec_.IsComplete(cg, Slice(encoded)));
  EXPECT_EQ(codec_.PresentCount(cg, Slice(encoded)), 2);

  std::vector<ColumnValuePair> decoded;
  ASSERT_TRUE(codec_.Decode(cg, Slice(encoded), &decoded).ok());
  EXPECT_EQ(decoded, values);
}

TEST_F(RowCodecTest, NarrowCgEncoding) {
  const ColumnSet cg = {3, 4, 7};
  std::vector<ColumnValuePair> values = {{3, 1}, {7, 2}};
  const std::string encoded = codec_.Encode(cg, values);
  std::vector<ColumnValuePair> decoded;
  ASSERT_TRUE(codec_.Decode(cg, Slice(encoded), &decoded).ok());
  EXPECT_EQ(decoded, values);
  // 1 bitmap byte + two 4-byte int32 values.
  EXPECT_EQ(encoded.size(), 1u + 8u);
}

TEST_F(RowCodecTest, MergeNewerWins) {
  const ColumnSet cg = MakeColumnRange(1, 8);
  const std::string older =
      codec_.Encode(cg, {{1, 10}, {2, 20}, {3, 30}});
  const std::string newer = codec_.Encode(cg, {{2, 99}, {4, 44}});
  const std::string merged = codec_.Merge(cg, Slice(newer), Slice(older));
  std::vector<ColumnValuePair> decoded;
  ASSERT_TRUE(codec_.Decode(cg, Slice(merged), &decoded).ok());
  const std::vector<ColumnValuePair> expected = {
      {1, 10}, {2, 99}, {3, 30}, {4, 44}};
  EXPECT_EQ(decoded, expected);
}

TEST_F(RowCodecTest, MergePaperExample) {
  // §4.2: key 100 update of B,C merged with full row <a,b,c,d>.
  Schema schema = Schema::UniformInt32(4);
  RowCodec codec(&schema);
  const ColumnSet cg = MakeColumnRange(1, 4);
  const std::string full = codec.Encode(cg, {{1, 'a'}, {2, 'b'}, {3, 'c'}, {4, 'd'}});
  const std::string partial = codec.Encode(cg, {{2, 'B'}, {3, 'C'}});
  const std::string merged = codec.Merge(cg, Slice(partial), Slice(full));
  EXPECT_TRUE(codec.IsComplete(cg, Slice(merged)));
  std::vector<ColumnValuePair> decoded;
  ASSERT_TRUE(codec.Decode(cg, Slice(merged), &decoded).ok());
  const std::vector<ColumnValuePair> expected = {
      {1, 'a'}, {2, 'B'}, {3, 'C'}, {4, 'd'}};
  EXPECT_EQ(decoded, expected);
}

TEST_F(RowCodecTest, ProjectSelectsChildColumns) {
  const ColumnSet parent = MakeColumnRange(1, 8);
  const ColumnSet child = {3, 4};
  std::vector<ColumnValuePair> values;
  for (int c = 1; c <= 8; ++c) values.push_back({c, static_cast<uint64_t>(c)});
  const std::string encoded = codec_.Encode(parent, values);
  const std::string projected = codec_.Project(parent, child, Slice(encoded));
  std::vector<ColumnValuePair> decoded;
  ASSERT_TRUE(codec_.Decode(child, Slice(projected), &decoded).ok());
  const std::vector<ColumnValuePair> expected = {{3, 3}, {4, 4}};
  EXPECT_EQ(decoded, expected);
  EXPECT_TRUE(codec_.IsComplete(child, Slice(projected)));
}

TEST_F(RowCodecTest, ProjectPartialMayBeEmpty) {
  const ColumnSet parent = MakeColumnRange(1, 8);
  const ColumnSet child = {7, 8};
  const std::string partial = codec_.Encode(parent, {{1, 1}, {2, 2}});
  const std::string projected = codec_.Project(parent, child, Slice(partial));
  EXPECT_EQ(codec_.PresentCount(child, Slice(projected)), 0);
}

TEST_F(RowCodecTest, FullRowSizeAccountsTypes) {
  std::vector<ColumnSpec> specs = {{"a", ColumnType::kInt32},
                                   {"b", ColumnType::kInt64},
                                   {"c", ColumnType::kDouble}};
  Schema schema(std::move(specs));
  RowCodec codec(&schema);
  // bitmap(1) + 4 + 8 + 8.
  EXPECT_EQ(codec.FullRowSize(MakeColumnRange(1, 3)), 21u);
}

TEST_F(RowCodecTest, WideValuesSurviveRoundTrip) {
  std::vector<ColumnSpec> specs = {{"a", ColumnType::kInt64},
                                   {"b", ColumnType::kDouble}};
  Schema schema(std::move(specs));
  RowCodec codec(&schema);
  const ColumnSet cg = {1, 2};
  const uint64_t big = 0xfedcba9876543210ull;
  const std::string encoded = codec.Encode(cg, {{1, big}, {2, big}});
  std::vector<ColumnValuePair> decoded;
  ASSERT_TRUE(codec.Decode(cg, Slice(encoded), &decoded).ok());
  EXPECT_EQ(decoded[0].value, big);
  EXPECT_EQ(decoded[1].value, big);
}

TEST_F(RowCodecTest, DecodeRejectsTruncatedData) {
  const ColumnSet cg = MakeColumnRange(1, 8);
  const std::string encoded = codec_.Encode(cg, {{1, 1}, {2, 2}});
  std::vector<ColumnValuePair> decoded;
  EXPECT_FALSE(
      codec_.Decode(cg, Slice(encoded.data(), encoded.size() - 3), &decoded).ok());
  EXPECT_FALSE(codec_.Decode(cg, Slice(""), &decoded).ok());
}

// Property test: merge is associative in effect — folding versions one at a
// time equals applying newest-wins per column directly.
class RowCodecMergeProperty : public ::testing::TestWithParam<int> {};

TEST_P(RowCodecMergeProperty, FoldMatchesDirectResolution) {
  Random rng(GetParam());
  Schema schema = Schema::UniformInt32(10);
  RowCodec codec(&schema);
  const ColumnSet cg = MakeColumnRange(1, 10);

  // Generate versions oldest..newest with random column subsets.
  std::vector<std::vector<ColumnValuePair>> versions;
  for (int v = 0; v < 8; ++v) {
    std::vector<ColumnValuePair> vals;
    for (int c = 1; c <= 10; ++c) {
      if (rng.OneIn(3)) {
        vals.push_back({c, rng.Next() % 1000});
      }
    }
    if (!vals.empty()) versions.push_back(std::move(vals));
  }
  if (versions.empty()) return;

  // Expected: newest-wins per column.
  std::map<int, uint64_t> expected;
  for (const auto& vals : versions) {
    for (const auto& [col, value] : vals) expected[col] = value;
  }

  // Fold encodings newest-first (as compaction does).
  std::string acc = codec.Encode(cg, versions.back());
  for (int v = static_cast<int>(versions.size()) - 2; v >= 0; --v) {
    const std::string older = codec.Encode(cg, versions[v]);
    acc = codec.Merge(cg, Slice(acc), Slice(older));
  }

  std::vector<ColumnValuePair> decoded;
  ASSERT_TRUE(codec.Decode(cg, Slice(acc), &decoded).ok());
  ASSERT_EQ(decoded.size(), expected.size());
  for (const auto& [col, value] : decoded) {
    EXPECT_EQ(value, expected[col]) << "column " << col;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RowCodecMergeProperty, ::testing::Range(0, 25));

// ------------------------------------------------------ ColumnSet helpers --

TEST(ColumnSetTest, ContainsAndIntersect) {
  const ColumnSet a = {1, 3, 5};
  const ColumnSet b = {2, 4, 5};
  const ColumnSet c = {2, 4};
  EXPECT_TRUE(ColumnSetContains(a, 3));
  EXPECT_FALSE(ColumnSetContains(a, 2));
  EXPECT_TRUE(ColumnSetsIntersect(a, b));
  EXPECT_FALSE(ColumnSetsIntersect(a, c));
}

TEST(ColumnSetTest, Subset) {
  EXPECT_TRUE(ColumnSetIsSubset({2, 4}, {1, 2, 3, 4}));
  EXPECT_FALSE(ColumnSetIsSubset({2, 5}, {1, 2, 3, 4}));
  EXPECT_TRUE(ColumnSetIsSubset({}, {1}));
}

TEST(ColumnSetTest, Intersection) {
  const ColumnSet result = ColumnSetIntersection({1, 2, 3, 7}, {2, 3, 4, 7});
  const ColumnSet expected = {2, 3, 7};
  EXPECT_EQ(result, expected);
}

TEST(ColumnSetTest, ToStringCompactsRanges) {
  EXPECT_EQ(ColumnSetToString({1, 2, 3, 4}), "1-4");
  EXPECT_EQ(ColumnSetToString({1, 3, 5}), "1,3,5");
  EXPECT_EQ(ColumnSetToString({1, 2, 3, 7, 9, 10}), "1-3,7,9-10");
  EXPECT_EQ(ColumnSetToString({}), "");
}

TEST(ColumnSetTest, MakeColumnRange) {
  EXPECT_EQ(MakeColumnRange(3, 5), (ColumnSet{3, 4, 5}));
  EXPECT_EQ(MakeColumnRange(7, 7), (ColumnSet{7}));
}

TEST(SchemaTest, UniformInt32) {
  Schema schema = Schema::UniformInt32(30);
  EXPECT_EQ(schema.num_columns(), 30);
  EXPECT_EQ(schema.column(1).name, "a1");
  EXPECT_EQ(schema.column(30).name, "a30");
  EXPECT_EQ(schema.value_size(15), 4u);
  EXPECT_EQ(schema.AllColumns().size(), 30u);
  // dt_size: (8 + 30*4)/31.
  EXPECT_NEAR(schema.AverageDatatypeSize(), 128.0 / 31.0, 1e-9);
}

}  // namespace
}  // namespace laser
