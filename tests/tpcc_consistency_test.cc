// TPC-C/CH workload frontend tests: composite-key codec, FreshnessProbe
// semantics (a lag is never reported for an unacknowledged write), and the
// deterministic small-scale consistency mode — the concurrent
// NewOrder/Payment/OrderStatus mix plus analytic Q1 rounds, run single- and
// multi-shard (the multi-shard spec forces heavy remote transactions through
// the cross-shard 2PC path), then the classic TPC-C invariants verified
// against both the database and the frontend's expected counters.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "workload/tpcc.h"

namespace laser {
namespace {

using tpcc::Table;

// ------------------------------------------------------------ key codec --

TEST(TpccKeysTest, RoundTrip) {
  const uint64_t key = tpcc::OrderLineKey(7, 9, 12345, 14);
  EXPECT_EQ(tpcc::KeyWarehouse(key), 7u);
  EXPECT_EQ(tpcc::KeyTable(key), Table::kOrderLine);
  EXPECT_EQ(tpcc::KeyDistrict(key), 9u);
  EXPECT_EQ(tpcc::KeyMid(key), 12345u);
  EXPECT_EQ(tpcc::KeyLow(key), 14u);

  const uint64_t stock = tpcc::StockKey(3, 99999);
  EXPECT_EQ(tpcc::KeyWarehouse(stock), 3u);
  EXPECT_EQ(tpcc::KeyTable(stock), Table::kStock);
  EXPECT_EQ(tpcc::KeyMid(stock), 99999u);
}

TEST(TpccKeysTest, WarehouseMajorOrdering) {
  // Everything of warehouse 1 sorts below everything of warehouse 2, and
  // tables within a warehouse sort in enum order.
  EXPECT_LT(tpcc::StockKey(1, 1u << 27), tpcc::WarehouseKey(2));
  EXPECT_LT(tpcc::WarehouseKey(1), tpcc::DistrictKey(1, 1));
  EXPECT_LT(tpcc::DistrictKey(1, 255), tpcc::CustomerKey(1, 1, 1));
  EXPECT_LT(tpcc::CustomerKey(1, 255, 1u << 27),
            tpcc::OrderKey(1, 1, 1));
  EXPECT_LT(tpcc::OrderKey(1, 255, 1u << 27), tpcc::OrderLineKey(1, 1, 1, 1));
  EXPECT_LT(tpcc::OrderLineKey(1, 255, 1u << 27, 255), tpcc::StockKey(1, 1));
}

TEST(TpccKeysTest, RangesContainExactlyTheirRows) {
  const tpcc::KeyRange lines = tpcc::OrderLineRange(2, 3, 40);
  EXPECT_LE(lines.lo, tpcc::OrderLineKey(2, 3, 40, 1));
  EXPECT_GE(lines.hi, tpcc::OrderLineKey(2, 3, 40, 255));
  EXPECT_LT(lines.hi, tpcc::OrderLineKey(2, 3, 41, 1));

  const tpcc::KeyRange orders = tpcc::DistrictRange(2, Table::kOrder, 3);
  EXPECT_LE(orders.lo, tpcc::OrderKey(2, 3, 1));
  EXPECT_LT(orders.hi, tpcc::OrderKey(2, 4, 1));
  EXPECT_LT(orders.hi, tpcc::OrderLineKey(2, 1, 1, 1));

  const tpcc::KeyRange table = tpcc::TableRange(2, Table::kStock);
  EXPECT_LE(table.lo, tpcc::StockKey(2, 1));
  EXPECT_GE(table.hi, tpcc::StockKey(2, (1u << 27)));
  EXPECT_LT(table.hi, tpcc::KeyDomain(2));
}

// ------------------------------------------------------- FreshnessProbe --

TEST(FreshnessProbeTest, NormalLagIsEndMinusAck) {
  FreshnessProbe probe(16);
  const uint64_t t1 = probe.AllocateTicket();
  ASSERT_EQ(t1, 1u);
  probe.RecordAck(t1, 1000);
  probe.ObserveVisible(t1, 1500);
  ASSERT_EQ(probe.lags().count(), 1u);
  EXPECT_DOUBLE_EQ(probe.lags().Max(), 500.0);
  EXPECT_EQ(probe.pending_unacked(), 0u);
}

TEST(FreshnessProbeTest, UnackedVisibleTicketIsNeverReported) {
  FreshnessProbe probe(16);
  const uint64_t t1 = probe.AllocateTicket();
  // Visible before the writer recorded its ack: no lag sample may appear.
  probe.ObserveVisible(t1, 2000);
  EXPECT_EQ(probe.lags().count(), 0u);
  EXPECT_EQ(probe.pending_unacked(), 1u);

  // Still unacked on a later round: still nothing.
  probe.ObserveVisible(t1, 3000);
  EXPECT_EQ(probe.lags().count(), 0u);
  EXPECT_EQ(probe.pending_unacked(), 1u);

  // Once acked, it resolves at zero lag (visible before ack == no lag).
  probe.RecordAck(t1, 2500);
  probe.ObserveVisible(t1, 4000);
  ASSERT_EQ(probe.lags().count(), 1u);
  EXPECT_DOUBLE_EQ(probe.lags().Max(), 0.0);
  EXPECT_EQ(probe.pending_unacked(), 0u);
}

TEST(FreshnessProbeTest, VisibleBeforeAckClampsAtZero) {
  FreshnessProbe probe(16);
  const uint64_t t1 = probe.AllocateTicket();
  probe.RecordAck(t1, 5000);
  probe.ObserveVisible(t1, 4000);  // scan finished before the ack landed
  ASSERT_EQ(probe.lags().count(), 1u);
  EXPECT_DOUBLE_EQ(probe.lags().Max(), 0.0);
}

TEST(FreshnessProbeTest, OutOfOrderCommitsDeferOnlyTheMissingTicket) {
  FreshnessProbe probe(16);
  const uint64_t t1 = probe.AllocateTicket();
  const uint64_t t2 = probe.AllocateTicket();
  probe.RecordAck(t2, 1000);  // ticket 2 commits first
  probe.ObserveVisible(t2, 1200);
  EXPECT_EQ(probe.lags().count(), 1u);   // t2 reported
  EXPECT_EQ(probe.pending_unacked(), 1u);  // t1 parked
  probe.RecordAck(t1, 1300);
  probe.ObserveVisible(t2, 1400);
  EXPECT_EQ(probe.lags().count(), 2u);
  EXPECT_EQ(probe.pending_unacked(), 0u);
}

TEST(FreshnessProbeTest, ExhaustionReturnsZeroTicket) {
  FreshnessProbe probe(2);
  EXPECT_EQ(probe.AllocateTicket(), 1u);
  EXPECT_EQ(probe.AllocateTicket(), 2u);
  EXPECT_EQ(probe.AllocateTicket(), 0u);
  EXPECT_EQ(probe.allocated(), 2u);
}

// ------------------------------------------- deterministic consistency --

class TpccConsistencyTest : public ::testing::TestWithParam<int> {
 protected:
  tpcc::TpccSpec SmallSpec() const {
    tpcc::TpccSpec spec;
    spec.warehouses = 2;
    spec.districts = 3;
    spec.customers = 5;
    spec.items = 50;
    spec.max_order_lines = 5;
    // Force the cross-shard 2PC path hard when warehouses span shards.
    spec.remote_payment_fraction = 0.5;
    spec.remote_line_fraction = 0.3;
    spec.max_new_orders = 4096;
    return spec;
  }

  /// Runs the concurrent mix (one writer per warehouse + one analytic
  /// thread) and returns the driver for verification.
  void RunMix(ShardedLaserDB* db, tpcc::TpccDriver* driver,
              uint64_t txns_per_writer) {
    ASSERT_TRUE(driver->Load().ok());
    std::atomic<bool> done{false};
    std::atomic<bool> failed{false};

    std::vector<std::thread> writers;
    for (uint32_t w = 1; w <= driver->spec().warehouses; ++w) {
      writers.emplace_back([&, w] {
        Random rng(7 * w);
        for (uint64_t i = 0; i < txns_per_writer; ++i) {
          const uint64_t roll = rng.Uniform(100);
          Status status;
          if (roll < 45) {
            status = driver->NewOrder(w, &rng);
          } else if (roll < 88) {
            status = driver->Payment(w, &rng);
          } else {
            status = driver->OrderStatus(w, &rng);
          }
          if (!status.ok()) {
            ADD_FAILURE() << "txn failed: " << status.ToString();
            failed.store(true);
            return;
          }
        }
      });
    }
    std::thread analytic([&] {
      std::vector<tpcc::Q1Group> groups;
      bool last_round = false;
      while (!failed.load()) {
        if (!driver->RunQ1(&groups).ok()) {
          ADD_FAILURE() << "Q1 failed";
          return;
        }
        if (last_round) return;
        if (done.load()) last_round = true;  // one round past the writers
      }
    });
    for (auto& writer : writers) writer.join();
    done.store(true);
    analytic.join();
    ASSERT_FALSE(failed.load());
    ASSERT_TRUE(db->Flush().ok());
  }
};

TEST_P(TpccConsistencyTest, InvariantsHoldUnderConcurrentMix) {
  const int shards = GetParam();
  auto env = NewMemEnv();
  const tpcc::TpccSpec spec = SmallSpec();
  ShardedLaserOptions options =
      tpcc::TpccOptions(env.get(), "/tpcc", spec, shards);
  options.base.write_buffer_size = 16 * 1024;  // force flushes/compactions
  options.base.level0_bytes = 32 * 1024;
  options.base.target_sst_size = 16 * 1024;
  options.base.block_size = 1024;
  options.base.background_threads = 1;
  std::unique_ptr<ShardedLaserDB> db;
  ASSERT_TRUE(ShardedLaserDB::Open(options, &db).ok());
  ASSERT_EQ(db->num_shards(), shards);

  tpcc::TpccDriver driver(spec, db.get());
  RunMix(db.get(), &driver, /*txns_per_writer=*/300);

  EXPECT_TRUE(driver.VerifyInvariants().ok())
      << driver.VerifyInvariants().ToString();
  EXPECT_GT(driver.new_orders_committed(), 0u);
  EXPECT_GT(driver.payments_committed(), 0u);

  // Freshness: the final post-writer Q1 round saw every committed ticket,
  // every one of them acked — so no ticket may still be parked as
  // visible-but-unacked, no lag may be negative (clamped), and samples only
  // exist for acked writes.
  EXPECT_EQ(driver.probe().pending_unacked(), 0u);
  if (driver.probe().lags().count() > 0) {
    EXPECT_GE(driver.probe().lags().Min(), 0.0);
  }
  EXPECT_LE(driver.probe().lags().count(), driver.probe().allocated());
}

TEST_P(TpccConsistencyTest, Q1MatchesRowModeGroundTruth) {
  const int shards = GetParam();
  auto env = NewMemEnv();
  tpcc::TpccSpec spec = SmallSpec();
  spec.remote_line_fraction = 0.1;
  ShardedLaserOptions options =
      tpcc::TpccOptions(env.get(), "/tpcc_q1", spec, shards);
  options.base.write_buffer_size = 16 * 1024;
  options.base.background_threads = 1;
  std::unique_ptr<ShardedLaserDB> db;
  ASSERT_TRUE(ShardedLaserDB::Open(options, &db).ok());

  tpcc::TpccDriver driver(spec, db.get());
  ASSERT_TRUE(driver.Load().ok());
  Random rng(99);
  for (int i = 0; i < 120; ++i) {
    const uint32_t w = 1 + static_cast<uint32_t>(rng.Uniform(spec.warehouses));
    ASSERT_TRUE(driver.NewOrder(w, &rng).ok());
  }

  std::vector<tpcc::Q1Group> groups;
  ASSERT_TRUE(driver.RunQ1(&groups).ok());
  ASSERT_EQ(groups.size(), static_cast<size_t>(tpcc::kNumStatuses));

  // Ground truth: row-mode scan of every order_line, folded by status.
  uint64_t rows[tpcc::kNumStatuses] = {0};
  uint64_t amount[tpcc::kNumStatuses] = {0};
  uint64_t quantity[tpcc::kNumStatuses] = {0};
  for (uint32_t w = 1; w <= spec.warehouses; ++w) {
    const tpcc::KeyRange range = tpcc::TableRange(w, Table::kOrderLine);
    auto scan = db->NewScan(range.lo, range.hi,
                            {tpcc::kColStatus, tpcc::kColAmount,
                             tpcc::kColQuantity});
    ASSERT_NE(scan, nullptr);
    for (; scan->Valid(); scan->Next()) {
      const uint64_t status = scan->values()[0].value_or(0);
      ASSERT_LT(status, static_cast<uint64_t>(tpcc::kNumStatuses));
      ++rows[status];
      amount[status] += scan->values()[1].value_or(0);
      quantity[status] += scan->values()[2].value_or(0);
    }
    ASSERT_TRUE(scan->status().ok());
  }
  for (int s = 0; s < tpcc::kNumStatuses; ++s) {
    EXPECT_EQ(groups[s].rows, rows[s]) << "status " << s;
    EXPECT_EQ(groups[s].sum_amount, amount[s]) << "status " << s;
    EXPECT_EQ(groups[s].sum_quantity, quantity[s]) << "status " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(SingleAndMultiShard, TpccConsistencyTest,
                         ::testing::Values(1, 2),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return info.param == 1 ? "single_shard"
                                                  : "two_shards";
                         });

}  // namespace
}  // namespace laser
