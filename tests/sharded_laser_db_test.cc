// ShardedLaserDB tests: router math, routed CRUD, cross-shard WriteBatch
// atomicity and persistence, concatenated fan-out scans (batch / row /
// aggregate / pushdown modes), stats aggregation, and a multi-threaded
// cross-shard commit stress run (the TSan target).

#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "laser/sharded_laser_db.h"
#include "tests/test_util.h"

namespace laser {
namespace {

// ----------------------------------------------------------- ShardRouter --

TEST(ShardRouterTest, UniformSplitsCoverTheDomain) {
  ShardRouter router = ShardRouter::Uniform(4, 1000);
  ASSERT_EQ(router.num_shards(), 4);
  EXPECT_EQ(router.split_points(), (std::vector<uint64_t>{250, 500, 750}));

  EXPECT_EQ(router.ShardOf(0), 0);
  EXPECT_EQ(router.ShardOf(249), 0);
  EXPECT_EQ(router.ShardOf(250), 1);  // a split point opens the next shard
  EXPECT_EQ(router.ShardOf(499), 1);
  EXPECT_EQ(router.ShardOf(500), 2);
  EXPECT_EQ(router.ShardOf(999), 3);
  // Keys past the nominal domain still route (to the last shard).
  EXPECT_EQ(router.ShardOf(UINT64_MAX), 3);

  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(router.ShardOf(router.shard_lo(i)), i);
    EXPECT_EQ(router.ShardOf(router.shard_hi(i)), i);
  }
  EXPECT_EQ(router.shard_lo(0), 0u);
  EXPECT_EQ(router.shard_hi(0), 249u);
  EXPECT_EQ(router.shard_lo(3), 750u);
  EXPECT_EQ(router.shard_hi(3), UINT64_MAX);
}

TEST(ShardRouterTest, SingleShardHasNoSplits) {
  ShardRouter router = ShardRouter::Uniform(1, 1000);
  EXPECT_EQ(router.num_shards(), 1);
  EXPECT_EQ(router.ShardOf(0), 0);
  EXPECT_EQ(router.ShardOf(UINT64_MAX), 0);
}

TEST(ShardRouterTest, DegenerateDomainKeepsEveryShardNonEmpty) {
  // Domain smaller than the shard count: uniform width rounds to zero, but
  // the router must still hand every shard a non-empty range.
  ShardRouter router = ShardRouter::Uniform(4, 2);
  ASSERT_EQ(router.num_shards(), 4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_LE(router.shard_lo(i), router.shard_hi(i));
    if (i > 0) {
      EXPECT_GT(router.shard_lo(i), router.shard_hi(i - 1));
    }
  }
}

TEST(ShardRouterTest, ExplicitSplitPoints) {
  ShardRouter router({100});
  EXPECT_EQ(router.num_shards(), 2);
  EXPECT_EQ(router.ShardOf(99), 0);
  EXPECT_EQ(router.ShardOf(100), 1);
}

// -------------------------------------------------------- ShardedLaserDB --

class ShardedLaserDbTest : public ::testing::Test {
 protected:
  static constexpr int kColumns = 4;
  static constexpr int kLevels = 4;
  static constexpr int kShards = 4;
  static constexpr uint64_t kDomain = 1000;

  void SetUp() override {
    env_ = NewMemEnv();
    Reopen();
  }

  void Reopen() {
    db_.reset();
    ASSERT_TRUE(ShardedLaserDB::Open(MakeOptions(), &db_).ok());
  }

  ShardedLaserOptions MakeOptions() {
    ShardedLaserOptions options;
    options.base =
        test::TinyTreeOptions(env_.get(), "/sharded", kColumns, kLevels);
    options.base.cg_config = CgConfig::EquiWidth(kColumns, kLevels, 2);
    options.base.background_threads = 1;
    options.num_shards = kShards;
    options.key_domain = kDomain;
    return options;
  }

  std::vector<ColumnValue> Row(uint64_t key) {
    return test::TestRow(key, kColumns);
  }

  void ExpectRow(uint64_t key) {
    LaserDB::ReadResult result;
    ASSERT_TRUE(db_->Read(key, MakeColumnRange(1, kColumns), &result).ok());
    ASSERT_TRUE(result.found) << "key " << key;
    for (int c = 1; c <= kColumns; ++c) {
      ASSERT_TRUE(result.values[c - 1].has_value());
      EXPECT_EQ(*result.values[c - 1], key * 100 + static_cast<uint64_t>(c));
    }
  }

  /// Drains a scan through NextBatch, returning the keys in emission order.
  std::vector<uint64_t> ScanKeys(uint64_t lo, uint64_t hi) {
    auto scan = db_->NewScan(lo, hi, MakeColumnRange(1, kColumns));
    EXPECT_NE(scan, nullptr);
    std::vector<uint64_t> keys;
    ScanBatch batch;
    while (scan->NextBatch(&batch) > 0) {
      keys.insert(keys.end(), batch.keys.begin(), batch.keys.end());
    }
    EXPECT_TRUE(scan->status().ok());
    return keys;
  }

  std::unique_ptr<Env> env_;
  std::unique_ptr<ShardedLaserDB> db_;
};

TEST_F(ShardedLaserDbTest, OpenValidatesOptions) {
  ShardedLaserOptions bad = MakeOptions();
  bad.num_shards = 0;
  std::unique_ptr<ShardedLaserDB> db;
  EXPECT_TRUE(ShardedLaserDB::Open(bad, &db).IsInvalidArgument());

  bad = MakeOptions();
  bad.split_points = {10, 20};  // arity != num_shards - 1
  EXPECT_TRUE(ShardedLaserDB::Open(bad, &db).IsInvalidArgument());
}

TEST_F(ShardedLaserDbTest, RoutedCrudLandsOnOwningShard) {
  ASSERT_EQ(db_->num_shards(), kShards);
  ASSERT_TRUE(db_->Insert(10, Row(10)).ok());   // shard 0
  ASSERT_TRUE(db_->Insert(510, Row(510)).ok());  // shard 2
  ExpectRow(10);
  ExpectRow(510);

  // Each key lives only on its owning shard.
  LaserDB::ReadResult result;
  ASSERT_TRUE(db_->shard(0)->Read(10, {1}, &result).ok());
  EXPECT_TRUE(result.found);
  ASSERT_TRUE(db_->shard(0)->Read(510, {1}, &result).ok());
  EXPECT_FALSE(result.found);
  ASSERT_TRUE(db_->shard(2)->Read(510, {1}, &result).ok());
  EXPECT_TRUE(result.found);

  ASSERT_TRUE(db_->Update(510, {{2, 9999}}).ok());
  ASSERT_TRUE(db_->Read(510, {2}, &result).ok());
  ASSERT_TRUE(result.found);
  EXPECT_EQ(*result.values[0], 9999u);

  ASSERT_TRUE(db_->Delete(10).ok());
  ASSERT_TRUE(db_->Read(10, {1}, &result).ok());
  EXPECT_FALSE(result.found);
}

TEST_F(ShardedLaserDbTest, CrossShardBatchIsAppliedEverywhere) {
  WriteBatch batch;
  batch.Insert(10, Row(10));    // shard 0
  batch.Insert(260, Row(260));  // shard 1
  batch.Insert(510, Row(510));  // shard 2
  batch.Insert(760, Row(760));  // shard 3
  batch.Update(260, {{1, 42}});
  ASSERT_TRUE(db_->Write(batch).ok());

  ExpectRow(10);
  ExpectRow(510);
  ExpectRow(760);
  LaserDB::ReadResult result;
  ASSERT_TRUE(db_->Read(260, MakeColumnRange(1, kColumns), &result).ok());
  ASSERT_TRUE(result.found);
  EXPECT_EQ(*result.values[0], 42u);  // intra-shard op order preserved
  EXPECT_EQ(*result.values[1], 260u * 100 + 2);
}

TEST_F(ShardedLaserDbTest, SingleShardBatchTakesTheFastPath) {
  // Both keys in shard 1: rides ordinary group commit, no xid burned.
  WriteBatch batch;
  batch.Insert(300, Row(300));
  batch.Delete(301);
  ASSERT_TRUE(db_->Write(batch).ok());
  ExpectRow(300);
  EXPECT_TRUE(db_->Write(WriteBatch()).ok());  // empty batch is a no-op
}

TEST_F(ShardedLaserDbTest, CrossShardBatchSurvivesReopen) {
  WriteBatch batch;
  batch.Insert(20, Row(20));
  batch.Insert(270, Row(270));
  batch.Insert(770, Row(770));
  ASSERT_TRUE(db_->Write(batch).ok());
  ASSERT_TRUE(db_->Insert(520, Row(520)).ok());

  // No flush: recovery replays each shard's WAL, consulting the coordinator
  // log for the prepared cross-shard groups.
  Reopen();
  ExpectRow(20);
  ExpectRow(270);
  ExpectRow(520);
  ExpectRow(770);

  // And again after a flush cycle (nothing left in any WAL).
  ASSERT_TRUE(db_->Flush().ok());
  Reopen();
  ExpectRow(20);
  ExpectRow(770);
}

TEST_F(ShardedLaserDbTest, ScanConcatenatesShardsInKeyOrder) {
  for (uint64_t k = 0; k < 600; ++k) {
    ASSERT_TRUE(db_->Insert(k, Row(k)).ok());
  }
  std::vector<uint64_t> keys = ScanKeys(0, 599);
  ASSERT_EQ(keys.size(), 600u);
  for (uint64_t k = 0; k < 600; ++k) EXPECT_EQ(keys[k], k);

  // A sub-range straddling the shard-0/shard-1 boundary at 250.
  keys = ScanKeys(240, 270);
  ASSERT_EQ(keys.size(), 31u);
  EXPECT_EQ(keys.front(), 240u);
  EXPECT_EQ(keys.back(), 270u);

  // Range confined to one shard.
  keys = ScanKeys(500, 520);
  ASSERT_EQ(keys.size(), 21u);
  EXPECT_EQ(keys.front(), 500u);
}

TEST_F(ShardedLaserDbTest, ScanRowModeCrossesShardBoundary) {
  for (uint64_t k = 245; k <= 255; ++k) {
    ASSERT_TRUE(db_->Insert(k, Row(k)).ok());
  }
  auto scan = db_->NewScan(245, 255, MakeColumnRange(1, kColumns));
  ASSERT_NE(scan, nullptr);
  uint64_t expect = 245;
  for (; scan->Valid(); scan->Next(), ++expect) {
    EXPECT_EQ(scan->key(), expect);
    ASSERT_TRUE(scan->values()[0].has_value());
    EXPECT_EQ(*scan->values()[0], expect * 100 + 1);
  }
  EXPECT_EQ(expect, 256u);
  EXPECT_TRUE(scan->status().ok());
}

TEST_F(ShardedLaserDbTest, PushdownPredicatesFilterAcrossShards) {
  for (uint64_t k = 0; k < 600; ++k) {
    ASSERT_TRUE(db_->Insert(k, Row(k)).ok());
  }
  ASSERT_TRUE(db_->Flush().ok());

  // Column 2 holds key*100 + 2: the band selects keys 250..260, straddling
  // the shard boundary at 250.
  ScanSpec spec;
  spec.predicates = {{2, PredOp::kBetween, 25002, 26002}};
  auto scan = db_->NewScan(0, 599, MakeColumnRange(1, kColumns), spec);
  ASSERT_NE(scan, nullptr);
  std::vector<uint64_t> keys;
  ScanBatch batch;
  while (scan->NextBatch(&batch) > 0) {
    keys.insert(keys.end(), batch.keys.begin(), batch.keys.end());
  }
  ASSERT_TRUE(scan->status().ok());
  ASSERT_EQ(keys.size(), 11u);
  EXPECT_EQ(keys.front(), 250u);
  EXPECT_EQ(keys.back(), 260u);
}

TEST_F(ShardedLaserDbTest, AggregateAllFoldsOverEveryShard) {
  uint64_t sum_c1 = 0;
  for (uint64_t k = 0; k < 600; ++k) {
    ASSERT_TRUE(db_->Insert(k, Row(k)).ok());
    sum_c1 += k * 100 + 1;
  }
  auto scan = db_->NewScan(0, 599, {1});
  ASSERT_NE(scan, nullptr);
  ScanAggregates agg;
  ASSERT_TRUE(scan->AggregateAll(&agg).ok());
  EXPECT_EQ(agg.rows, 600u);
  ASSERT_EQ(agg.counts.size(), 1u);
  EXPECT_EQ(agg.counts[0], 600u);
  EXPECT_EQ(agg.sums[0], sum_c1);
  EXPECT_EQ(agg.minima[0], 1u);
  EXPECT_EQ(agg.maxima[0], 599u * 100 + 1);
}

TEST_F(ShardedLaserDbTest, AggregateStatsSumsShardCounters) {
  for (uint64_t k = 0; k < 600; k += 10) {
    ASSERT_TRUE(db_->Insert(k, Row(k)).ok());
  }
  ASSERT_TRUE(db_->Flush().ok());
  Stats total;
  db_->AggregateStats(&total);
  uint64_t flush_jobs = 0;
  for (int i = 0; i < db_->num_shards(); ++i) {
    flush_jobs += db_->shard(i)->stats().flush_jobs.load();
  }
  EXPECT_GT(flush_jobs, 0u);
  EXPECT_EQ(total.flush_jobs.load(), flush_jobs);
  EXPECT_GT(total.wal_group_commits.load(), 0u);
  EXPECT_FALSE(db_->DebugString().empty());
}

TEST_F(ShardedLaserDbTest, ConcurrentCrossShardWritesStress) {
  // Each thread commits cross-shard batches on its own key slice: key1 in
  // shards 0/1 ([t*125, t*125+100)), key2 = key1 + 500 in shards 2/3. This
  // drives the prepare/commit path from many coordinators at once and is the
  // suite's TSan anchor.
  constexpr int kThreads = 4;
  constexpr int kBatches = 60;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int j = 0; j < kBatches; ++j) {
        const uint64_t key1 = static_cast<uint64_t>(t) * 125 + j;
        WriteBatch batch;
        batch.Insert(key1, Row(key1));
        batch.Insert(key1 + 500, Row(key1 + 500));
        if (!db_->Write(batch).ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  ASSERT_EQ(failures.load(), 0);

  for (int t = 0; t < kThreads; ++t) {
    for (int j = 0; j < kBatches; ++j) {
      const uint64_t key1 = static_cast<uint64_t>(t) * 125 + j;
      ExpectRow(key1);
      ExpectRow(key1 + 500);
    }
  }
  // Everything still intact after recovery.
  Reopen();
  ExpectRow(0);
  ExpectRow(500);
  ExpectRow(3 * 125 + kBatches - 1 + 500);
}

}  // namespace
}  // namespace laser
