// Randomized differential test of the batched scan path: NextBatch (at many
// batch sizes, including sizes that straddle key runs) must agree exactly
// with the per-row cursor AND with a naive in-memory model, across random
// workloads of inserts / partial updates / deletes, flush/compaction cuts,
// several CG designs, and snapshot isolation (a scan opened before later
// writes must not see them).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "laser/laser_db.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace laser {
namespace {

constexpr int kColumns = 10;
constexpr int kLevels = 5;
constexpr uint64_t kKeySpace = 700;

// column id -> value; a key absent from the model is deleted/never written.
using ModelRow = std::map<int, uint64_t>;
using Model = std::map<uint64_t, ModelRow>;

struct ResultRow {
  uint64_t key = 0;
  std::vector<std::optional<ColumnValue>> values;

  bool operator==(const ResultRow&) const = default;
};

std::string Describe(const std::vector<ResultRow>& rows, size_t limit = 5) {
  std::ostringstream out;
  out << rows.size() << " rows:";
  for (size_t i = 0; i < rows.size() && i < limit; ++i) {
    out << " " << rows[i].key << "(";
    for (const auto& v : rows[i].values) {
      if (v.has_value()) {
        out << *v << ",";
      } else {
        out << "null,";
      }
    }
    out << ")";
  }
  return out.str();
}

/// What the engine must return for [lo, hi] with `projection`: rows in key
/// order where at least one projected column has a value; other projected
/// columns are null.
std::vector<ResultRow> ModelScan(const Model& model, uint64_t lo, uint64_t hi,
                                 const ColumnSet& projection) {
  std::vector<ResultRow> out;
  for (auto it = model.lower_bound(lo); it != model.end() && it->first <= hi;
       ++it) {
    ResultRow row;
    row.key = it->first;
    bool any = false;
    for (const int column : projection) {
      auto v = it->second.find(column);
      if (v != it->second.end()) {
        row.values.emplace_back(v->second);
        any = true;
      } else {
        row.values.emplace_back(std::nullopt);
      }
    }
    if (any) out.push_back(std::move(row));
  }
  return out;
}

std::vector<ResultRow> RowApiScan(LaserDB* db, uint64_t lo, uint64_t hi,
                                  const ColumnSet& projection) {
  std::vector<ResultRow> out;
  auto scan = db->NewScan(lo, hi, projection);
  EXPECT_NE(scan, nullptr);
  for (; scan->Valid(); scan->Next()) {
    out.push_back(ResultRow{scan->key(), scan->values()});
  }
  EXPECT_TRUE(scan->status().ok());
  return out;
}

std::vector<ResultRow> BatchApiScan(LaserDB* db, uint64_t lo, uint64_t hi,
                                    const ColumnSet& projection,
                                    size_t batch_rows) {
  std::vector<ResultRow> out;
  auto scan = db->NewScan(lo, hi, projection);
  EXPECT_NE(scan, nullptr);
  ScanBatch batch;
  while (size_t n = scan->NextBatch(&batch, batch_rows)) {
    EXPECT_LE(n, batch_rows);
    EXPECT_EQ(batch.size(), n);
    for (size_t i = 0; i < n; ++i) {
      ResultRow row;
      row.key = batch.keys[i];
      for (size_t c = 0; c < projection.size(); ++c) {
        if (batch.columns[c].present[i]) {
          row.values.emplace_back(batch.columns[c].values[i]);
        } else {
          row.values.emplace_back(std::nullopt);
        }
      }
      out.push_back(std::move(row));
    }
  }
  EXPECT_TRUE(scan->status().ok());
  return out;
}

/// Filter-after-materialize reference for pushdown: keep the model rows where
/// every predicate matches its column's projected value (null fails, AND
/// semantics) — exactly what the engine must compute below materialization.
std::vector<ResultRow> FilterRows(std::vector<ResultRow> rows,
                                  const ColumnSet& projection,
                                  const ScanSpec& spec) {
  std::vector<ResultRow> out;
  for (auto& row : rows) {
    bool match = true;
    for (const ScanPredicate& pred : spec.predicates) {
      const auto it =
          std::lower_bound(projection.begin(), projection.end(), pred.column);
      const size_t pos = static_cast<size_t>(it - projection.begin());
      const auto& value = row.values[pos];
      if (!value.has_value() || !PredicateMatches(pred, *value)) {
        match = false;
        break;
      }
    }
    if (match) out.push_back(std::move(row));
  }
  return out;
}

std::vector<ResultRow> PredRowApiScan(LaserDB* db, uint64_t lo, uint64_t hi,
                                      const ColumnSet& projection,
                                      const ScanSpec& spec) {
  std::vector<ResultRow> out;
  auto scan = db->NewScan(lo, hi, projection, spec);
  EXPECT_NE(scan, nullptr);
  for (; scan->Valid(); scan->Next()) {
    out.push_back(ResultRow{scan->key(), scan->values()});
  }
  EXPECT_TRUE(scan->status().ok());
  return out;
}

std::vector<ResultRow> PredBatchApiScan(LaserDB* db, uint64_t lo, uint64_t hi,
                                        const ColumnSet& projection,
                                        const ScanSpec& spec,
                                        size_t batch_rows) {
  std::vector<ResultRow> out;
  auto scan = db->NewScan(lo, hi, projection, spec);
  EXPECT_NE(scan, nullptr);
  ScanBatch batch;
  while (size_t n = scan->NextBatch(&batch, batch_rows)) {
    EXPECT_LE(n, batch_rows);
    for (size_t i = 0; i < n; ++i) {
      ResultRow row;
      row.key = batch.keys[i];
      for (size_t c = 0; c < projection.size(); ++c) {
        if (batch.columns[c].present[i]) {
          row.values.emplace_back(batch.columns[c].values[i]);
        } else {
          row.values.emplace_back(std::nullopt);
        }
      }
      out.push_back(std::move(row));
    }
  }
  EXPECT_TRUE(scan->status().ok());
  return out;
}

/// Folds the reference rows into the aggregates AggregateAll must return.
ScanAggregates FoldRows(const std::vector<ResultRow>& rows, size_t width) {
  ScanAggregates aggs;
  aggs.counts.assign(width, 0);
  aggs.sums.assign(width, 0);
  aggs.minima.assign(width, UINT64_MAX);
  aggs.maxima.assign(width, 0);
  aggs.rows = rows.size();
  for (const ResultRow& row : rows) {
    for (size_t c = 0; c < width; ++c) {
      if (!row.values[c].has_value()) continue;
      const uint64_t v = *row.values[c];
      ++aggs.counts[c];
      aggs.sums[c] += v;
      aggs.minima[c] = std::min(aggs.minima[c], v);
      aggs.maxima[c] = std::max(aggs.maxima[c], v);
    }
  }
  return aggs;
}

/// Differentially checks the pushdown plans (batched, per-row, aggregated)
/// against filter-after-materialize over the model.
void CheckPushdownStyles(LaserDB* db, const Model& model, uint64_t lo,
                         uint64_t hi, const ColumnSet& projection,
                         const ScanSpec& spec, const char* what) {
  const auto expected =
      FilterRows(ModelScan(model, lo, hi, projection), projection, spec);
  const auto via_rows = PredRowApiScan(db, lo, hi, projection, spec);
  ASSERT_EQ(via_rows, expected)
      << what << ": predicated row API mismatch [" << lo << "," << hi
      << "] got " << Describe(via_rows) << " want " << Describe(expected);
  for (const size_t batch_rows : {size_t{1}, size_t{7}, size_t{64},
                                  size_t{1024}}) {
    const auto via_batch =
        PredBatchApiScan(db, lo, hi, projection, spec, batch_rows);
    ASSERT_EQ(via_batch, expected)
        << what << ": predicated batch API mismatch batch_rows=" << batch_rows
        << " [" << lo << "," << hi << "] got " << Describe(via_batch)
        << " want " << Describe(expected);
  }

  const ScanAggregates want = FoldRows(expected, projection.size());
  auto scan = db->NewScan(lo, hi, projection, spec);
  ASSERT_NE(scan, nullptr);
  ScanAggregates got;
  ASSERT_TRUE(scan->AggregateAll(&got).ok());
  ASSERT_EQ(got.rows, want.rows) << what << ": aggregate row count";
  ASSERT_EQ(got.counts, want.counts) << what << ": aggregate counts";
  ASSERT_EQ(got.sums, want.sums) << what << ": aggregate sums";
  ASSERT_EQ(got.minima, want.minima) << what << ": aggregate minima";
  ASSERT_EQ(got.maxima, want.maxima) << what << ": aggregate maxima";
}

/// A random 1-2 conjunct spec over `projection`. Operands are drawn from the
/// value domain, sometimes from an actual stored value so kEq/kNe hit.
ScanSpec RandomSpec(Random* rng, const Model& model,
                    const ColumnSet& projection) {
  ScanSpec spec;
  const int conjuncts = 1 + static_cast<int>(rng->Uniform(2));
  for (int i = 0; i < conjuncts; ++i) {
    ScanPredicate pred;
    pred.column = projection[rng->Uniform(projection.size())];
    pred.op = static_cast<PredOp>(rng->Uniform(7));
    pred.operand = rng->Uniform(1u << 30);
    if (!model.empty() && rng->Uniform(3) == 0) {
      auto it = model.lower_bound(rng->Uniform(kKeySpace));
      if (it == model.end()) it = model.begin();
      const auto v = it->second.find(pred.column);
      if (v != it->second.end()) pred.operand = v->second;
    }
    if (pred.op == PredOp::kBetween) {
      pred.operand2 = pred.operand + rng->Uniform(1u << 28);
    }
    spec.predicates.push_back(pred);
  }
  return spec;
}

class ScanBatchDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(ScanBatchDifferentialTest, BatchMatchesRowMatchesModel) {
  const int seed = GetParam();
  Random rng(0x5ca4ba7c + static_cast<uint64_t>(seed) * 7919);

  // Rotate the design with the seed so row-only, the many-small-CG zip
  // shapes (size 2 and 3), and the hybrid/simulated-columnar layouts all get
  // differential coverage.
  const std::vector<test::DesignParam> designs = {
      {"row", 0}, {"cg2", 2}, {"cg3", 3}, {"htap", -1}, {"col", 1}};
  const test::DesignParam& design = designs[seed % designs.size()];

  auto env = NewMemEnv();
  LaserOptions options = test::TinyTreeOptions(env.get(), "/db", kColumns,
                                               kLevels);
  options.cg_config = test::DesignConfig(design, kColumns, kLevels);
  options.background_threads = 2;
  std::unique_ptr<LaserDB> db;
  ASSERT_TRUE(LaserDB::Open(options, &db).ok());

  Model model;
  const int ops = 1600;
  for (int op = 0; op < ops; ++op) {
    const uint64_t key = rng.Uniform(kKeySpace);
    const uint32_t kind = rng.Uniform(10);
    if (kind < 6) {
      std::vector<ColumnValue> row(kColumns);
      for (int c = 0; c < kColumns; ++c) row[c] = rng.Uniform(1u << 30);
      ASSERT_TRUE(db->Insert(key, row).ok());
      ModelRow& mrow = model[key];
      mrow.clear();
      for (int c = 0; c < kColumns; ++c) mrow[c + 1] = row[c];
    } else if (kind < 8) {
      // Partial update of a random sorted column subset (also resurrects
      // columns of deleted keys, like the engine's merge semantics).
      std::vector<ColumnValuePair> values;
      for (int c = 1; c <= kColumns; ++c) {
        if (rng.Uniform(4) == 0) {
          values.push_back({c, rng.Uniform(1u << 30)});
        }
      }
      if (values.empty()) values.push_back({1, rng.Uniform(1u << 30)});
      ASSERT_TRUE(db->Update(key, values).ok());
      ModelRow& mrow = model[key];
      for (const auto& pair : values) mrow[pair.column] = pair.value;
    } else if (kind < 9) {
      ASSERT_TRUE(db->Delete(key).ok());
      model.erase(key);
    } else if (rng.Uniform(4) == 0) {
      ASSERT_TRUE(db->Flush().ok());
    }
    // Differential checks both mid-stream (memtable + L0 heavy) and after
    // full compaction (deep CG runs, the fast-path steady state).
    const bool mid_check = op == ops / 2;
    const bool final_check = op == ops - 1;
    if (!mid_check && !final_check) continue;
    if (final_check) {
      ASSERT_TRUE(db->CompactUntilStable().ok());
    }

    for (int check = 0; check < 8; ++check) {
      const uint64_t lo = rng.Uniform(kKeySpace);
      const uint64_t hi = lo + 1 + rng.Uniform(kKeySpace / 2);
      ColumnSet projection;
      switch (rng.Uniform(3)) {
        case 0:
          projection = {static_cast<int>(rng.Uniform(kColumns)) + 1};
          break;
        case 1:
          projection = MakeColumnRange(1, kColumns);
          break;
        default: {
          for (int c = 1; c <= kColumns; ++c) {
            if (rng.Uniform(2) == 0) projection.push_back(c);
          }
          if (projection.empty()) projection = {kColumns};
          break;
        }
      }
      const auto expected = ModelScan(model, lo, hi, projection);
      const auto via_rows = RowApiScan(db.get(), lo, hi, projection);
      ASSERT_EQ(via_rows, expected)
          << "row API mismatch seed=" << seed << " design=" << design.name
          << " [" << lo << "," << hi << "] got " << Describe(via_rows)
          << " want " << Describe(expected);
      // Batch sizes chosen to straddle run and batch boundaries: 1 (pure
      // row-at-a-time through the batch engine), tiny primes, and larger
      // than most ranges.
      for (const size_t batch_rows : {size_t{1}, size_t{3}, size_t{7},
                                      size_t{64}, size_t{1024}}) {
        const auto via_batch =
            BatchApiScan(db.get(), lo, hi, projection, batch_rows);
        ASSERT_EQ(via_batch, expected)
            << "batch API mismatch seed=" << seed << " design=" << design.name
            << " batch_rows=" << batch_rows << " [" << lo << "," << hi
            << "] got " << Describe(via_batch) << " want "
            << Describe(expected);
      }
      // Pushdown differential: the same range under a random predicate spec,
      // checked across all three consumption styles (batched, per-row,
      // aggregated) against filter-after-materialize over the model.
      const ScanSpec spec = RandomSpec(&rng, model, projection);
      ASSERT_NO_FATAL_FAILURE(CheckPushdownStyles(db.get(), model, lo, hi,
                                                  projection, spec,
                                                  "pushdown rotation"))
          << "seed=" << seed << " design=" << design.name;
    }
  }

  // Snapshot cut: a scan pins its read point at NewScan time; writes applied
  // afterwards must stay invisible to both consumption styles.
  const Model frozen = model;
  const ColumnSet full_proj = MakeColumnRange(1, kColumns);
  ScanSpec pinned_spec;
  pinned_spec.predicates.push_back(
      {1 + static_cast<int>(rng.Uniform(kColumns)), PredOp::kGe,
       rng.Uniform(1u << 30)});
  auto pinned_rows = db->NewScan(0, kKeySpace, MakeColumnRange(1, kColumns));
  auto pinned_batch = db->NewScan(0, kKeySpace, MakeColumnRange(1, kColumns));
  auto pinned_pred = db->NewScan(0, kKeySpace, full_proj, pinned_spec);
  ASSERT_NE(pinned_pred, nullptr);
  for (int i = 0; i < 200; ++i) {
    const uint64_t key = rng.Uniform(kKeySpace);
    if (rng.Uniform(3) == 0) {
      ASSERT_TRUE(db->Delete(key).ok());
    } else {
      std::vector<ColumnValue> row(kColumns, rng.Uniform(1u << 30));
      ASSERT_TRUE(db->Insert(key, row).ok());
    }
  }
  ASSERT_TRUE(db->Flush().ok());

  const auto expected = ModelScan(frozen, 0, kKeySpace,
                                  MakeColumnRange(1, kColumns));
  std::vector<ResultRow> via_rows;
  for (; pinned_rows->Valid(); pinned_rows->Next()) {
    via_rows.push_back(ResultRow{pinned_rows->key(), pinned_rows->values()});
  }
  ASSERT_EQ(via_rows, expected) << "snapshot cut leaked into the row cursor";

  std::vector<ResultRow> via_batch;
  ScanBatch batch;
  while (size_t n = pinned_batch->NextBatch(&batch, 13)) {
    for (size_t i = 0; i < n; ++i) {
      ResultRow row;
      row.key = batch.keys[i];
      for (size_t c = 0; c < batch.columns.size(); ++c) {
        if (batch.columns[c].present[i]) {
          row.values.emplace_back(batch.columns[c].values[i]);
        } else {
          row.values.emplace_back(std::nullopt);
        }
      }
      via_batch.push_back(std::move(row));
    }
  }
  ASSERT_EQ(via_batch, expected) << "snapshot cut leaked into NextBatch";

  // The predicated scan is pinned too: its pushed-down filter must run over
  // the frozen versions, not the post-cut writes.
  const auto pred_expected = FilterRows(
      ModelScan(frozen, 0, kKeySpace, full_proj), full_proj, pinned_spec);
  std::vector<ResultRow> via_pred;
  while (size_t n = pinned_pred->NextBatch(&batch, 13)) {
    for (size_t i = 0; i < n; ++i) {
      ResultRow row;
      row.key = batch.keys[i];
      for (size_t c = 0; c < batch.columns.size(); ++c) {
        if (batch.columns[c].present[i]) {
          row.values.emplace_back(batch.columns[c].values[i]);
        } else {
          row.values.emplace_back(std::nullopt);
        }
      }
      via_pred.push_back(std::move(row));
    }
  }
  ASSERT_EQ(via_pred, pred_expected)
      << "snapshot cut leaked into the predicated scan";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScanBatchDifferentialTest,
                         ::testing::Range(0, 15));

// A scan opened on an empty range (or empty database) terminates cleanly in
// both styles.
TEST(ScanBatchTest, EmptyRangeAndEmptyDb) {
  auto env = NewMemEnv();
  LaserOptions options = test::TinyTreeOptions(env.get(), "/db", 4, 3);
  std::unique_ptr<LaserDB> db;
  ASSERT_TRUE(LaserDB::Open(options, &db).ok());

  auto scan = db->NewScan(10, 20, {1, 2});
  ASSERT_NE(scan, nullptr);
  EXPECT_FALSE(scan->Valid());
  ScanBatch batch;
  EXPECT_EQ(db->NewScan(10, 20, {1})->NextBatch(&batch), 0u);

  ASSERT_TRUE(db->Insert(5, {1, 2, 3, 4}).ok());
  ASSERT_TRUE(db->Insert(30, {5, 6, 7, 8}).ok());
  EXPECT_EQ(db->NewScan(10, 20, {1})->NextBatch(&batch), 0u);
  EXPECT_EQ(db->NewScan(0, 100, {1})->NextBatch(&batch), 2u);
}

// Regression (EnsureColumnCapacity pairing): the pre-fix code grew `present`
// only under the `values.size() < rows` check, so a caller that resized one
// vector independently left the pair silently diverged — later index writes
// then ran past the short vector. EnsureColumnCapacity is the single growth
// site and must restore values.size() == present.size() >= rows no matter
// how a consumer mangled the vectors.
TEST(ScanBatchTest, EnsureColumnCapacityRepairsDivergedVectors) {
  ScanBatch batch;
  batch.Reset(3);
  batch.EnsureColumnCapacity(8);
  for (const ScanBatch::Column& column : batch.columns) {
    EXPECT_EQ(column.values.size(), 8u);
    EXPECT_EQ(column.present.size(), 8u);
  }

  // A consumer shrank `present` below `values`: the old code saw
  // values.size() >= rows and grew NEITHER, leaving present too short.
  batch.columns[0].present.resize(2);
  batch.EnsureColumnCapacity(8);
  EXPECT_EQ(batch.columns[0].present.size(), 8u);
  EXPECT_EQ(batch.columns[0].values.size(), 8u);

  // The opposite divergence (present longer than values) must also heal,
  // and growth keeps the pairing.
  batch.columns[1].present.resize(32);
  batch.EnsureColumnCapacity(16);
  EXPECT_EQ(batch.columns[1].values.size(), batch.columns[1].present.size());
  EXPECT_GE(batch.columns[1].values.size(), 16u);

  // Shrinking requests never shrink storage (capacity is sticky).
  batch.EnsureColumnCapacity(1);
  EXPECT_GE(batch.columns[0].values.size(), 8u);
  EXPECT_EQ(batch.columns[0].values.size(), batch.columns[0].present.size());
}

// -- zip-path targeted coverage: CG-size-2/3 designs where every level is a
// stack of small column groups advancing in lockstep --

/// Differentially checks every consumption style over [lo, hi] x projection.
void CheckAllStyles(LaserDB* db, const Model& model, uint64_t lo, uint64_t hi,
                    const ColumnSet& projection, const char* what) {
  const auto expected = ModelScan(model, lo, hi, projection);
  const auto via_rows = RowApiScan(db, lo, hi, projection);
  ASSERT_EQ(via_rows, expected)
      << what << ": row API mismatch [" << lo << "," << hi << "] got "
      << Describe(via_rows) << " want " << Describe(expected);
  // Batch sizes straddle zip splice boundaries (1 row at a time up to
  // larger than the range) so zip<->fold flips happen at batch edges.
  for (const size_t batch_rows :
       {size_t{1}, size_t{2}, size_t{5}, size_t{29}, size_t{173}, size_t{4096}}) {
    const auto via_batch = BatchApiScan(db, lo, hi, projection, batch_rows);
    ASSERT_EQ(via_batch, expected)
        << what << ": batch API mismatch batch_rows=" << batch_rows << " ["
        << lo << "," << hi << "] got " << Describe(via_batch) << " want "
        << Describe(expected);
  }
}

class ZipPathTest : public ::testing::TestWithParam<int> {
 protected:
  /// Opens a tiny tree with CG size GetParam() (2 or 3).
  std::unique_ptr<LaserDB> OpenDb(Env* env) {
    LaserOptions options =
        test::TinyTreeOptions(env, "/zipdb", kColumns, kLevels);
    options.cg_config =
        CgConfig::EquiWidth(kColumns, kLevels, GetParam());
    std::unique_ptr<LaserDB> db;
    EXPECT_TRUE(LaserDB::Open(options, &db).ok());
    return db;
  }
};

// Clean contiguous rows with islands of partial updates: the zip must
// diverge mid-run at every island (only the updated column's group carries
// the extra version) and re-engage after it.
TEST_P(ZipPathTest, DivergenceMidRunFromPartialUpdates) {
  auto env = NewMemEnv();
  auto db = OpenDb(env.get());
  Model model;
  const uint64_t n = 400;
  for (uint64_t k = 0; k < n; ++k) {
    const auto row = test::TestRow(k, kColumns);
    ASSERT_TRUE(db->Insert(k, row).ok());
    for (int c = 0; c < kColumns; ++c) model[k][c + 1] = row[c];
  }
  ASSERT_TRUE(db->CompactUntilStable().ok());
  // Update one column (one group) of every 17th key AFTER settling, so the
  // newer partial version sits above the settled full rows.
  for (uint64_t k = 3; k < n; k += 17) {
    const int column = 1 + static_cast<int>(k % kColumns);
    ASSERT_TRUE(db->Update(k, {{column, k * 7}}).ok());
    model[k][column] = k * 7;
  }
  ASSERT_TRUE(db->Flush().ok());

  CheckAllStyles(db.get(), model, 0, n, MakeColumnRange(1, kColumns),
                 "divergence-mid-run");
  CheckAllStyles(db.get(), model, 120, 260, {1, 2, 9, 10},
                 "divergence-mid-run narrow");

  // And again after full compaction folds the islands back into full rows
  // (the zip steady state).
  ASSERT_TRUE(db->CompactUntilStable().ok());
  CheckAllStyles(db.get(), model, 0, n, MakeColumnRange(1, kColumns),
                 "divergence-mid-run settled");
}

// A tombstone resurrected in ONE column group only: delete the whole row,
// then partial-update columns of a single group. That group's cursor sees a
// newer value while every other group's newest version is the tombstone —
// the zip must veto these keys and the fold must keep the per-group
// tri-state semantics.
TEST_P(ZipPathTest, TombstoneInOneColumnGroupOnly) {
  auto env = NewMemEnv();
  auto db = OpenDb(env.get());
  Model model;
  const uint64_t n = 300;
  for (uint64_t k = 0; k < n; ++k) {
    const auto row = test::TestRow(k, kColumns);
    ASSERT_TRUE(db->Insert(k, row).ok());
    for (int c = 0; c < kColumns; ++c) model[k][c + 1] = row[c];
  }
  ASSERT_TRUE(db->CompactUntilStable().ok());
  for (uint64_t k = 5; k < n; k += 23) {
    ASSERT_TRUE(db->Delete(k).ok());
    model.erase(k);
    // Columns 1..cg_size form exactly the first group of every level.
    ASSERT_TRUE(db->Update(k, {{1, k + 1000}}).ok());
    model[k][1] = k + 1000;
  }
  ASSERT_TRUE(db->Flush().ok());

  CheckAllStyles(db.get(), model, 0, n, MakeColumnRange(1, kColumns),
                 "tombstone-one-group");
  // Projection entirely inside the resurrected group, and entirely outside.
  CheckAllStyles(db.get(), model, 0, n, {1}, "tombstone-one-group inside");
  CheckAllStyles(db.get(), model, 0, n, {kColumns},
                 "tombstone-one-group outside");

  ASSERT_TRUE(db->CompactUntilStable().ok());
  CheckAllStyles(db.get(), model, 0, n, MakeColumnRange(1, kColumns),
                 "tombstone-one-group settled");
}

// Zip<->fold mode flips across batch boundaries: every batch boundary lands
// the merge mid-stream (often mid-splice), and the next NextBatch call must
// resume exactly where the zip stopped — including when the resume point is
// a mutation island that needs the fold.
TEST_P(ZipPathTest, ModeFlipsAcrossBatchBoundaries) {
  auto env = NewMemEnv();
  auto db = OpenDb(env.get());
  Model model;
  const uint64_t n = 500;
  for (uint64_t k = 0; k < n; ++k) {
    const auto row = test::TestRow(k, kColumns);
    ASSERT_TRUE(db->Insert(k, row).ok());
    for (int c = 0; c < kColumns; ++c) model[k][c + 1] = row[c];
  }
  // Alternating mutation islands: a delete, a partial update, and a
  // re-insert every 31 keys, flushed in two waves so versions span levels.
  for (uint64_t k = 7; k < n; k += 31) {
    ASSERT_TRUE(db->Delete(k).ok());
    model.erase(k);
  }
  ASSERT_TRUE(db->Flush().ok());
  for (uint64_t k = 13; k < n; k += 31) {
    ASSERT_TRUE(db->Update(k, {{2, k}, {kColumns, k + 1}}).ok());
    model[k][2] = k;
    model[k][kColumns] = k + 1;
  }
  for (uint64_t k = 7; k < 200; k += 62) {
    const auto row = test::TestRow(k + 9000, kColumns);
    ASSERT_TRUE(db->Insert(k, row).ok());
    auto& mrow = model[k];
    mrow.clear();
    for (int c = 0; c < kColumns; ++c) mrow[c + 1] = row[c];
  }
  ASSERT_TRUE(db->CompactUntilStable().ok());

  CheckAllStyles(db.get(), model, 0, n, MakeColumnRange(1, kColumns),
                 "mode-flips");
  CheckAllStyles(db.get(), model, 50, 450, {1, 5, 6, kColumns}, "mode-flips mid");
}

INSTANTIATE_TEST_SUITE_P(CgSizes, ZipPathTest, ::testing::Values(2, 3));

// A predicate on a column outside the projection is a caller error: NewScan
// refuses it up front (the pushdown evaluates over projected vectors only).
TEST(ScanPushdownTest, PredicateColumnMustBeProjected) {
  auto env = NewMemEnv();
  LaserOptions options = test::TinyTreeOptions(env.get(), "/db", 4, 3);
  std::unique_ptr<LaserDB> db;
  ASSERT_TRUE(LaserDB::Open(options, &db).ok());
  ScanSpec spec;
  spec.predicates.push_back({3, PredOp::kGt, 5});
  EXPECT_EQ(db->NewScan(0, 100, {1, 2}, spec), nullptr);
  EXPECT_NE(db->NewScan(0, 100, {1, 2, 3}, spec), nullptr);
}

// Mode-mixing regression: a ScanIterator is either a batch cursor or a row
// cursor, never both — the two consumption styles share one underlying merge
// and mixing them silently skipped rows before the guard existed. In release
// builds (the default RelWithDebInfo defines NDEBUG) the misused call is
// inert and status() reports InvalidArgument; debug builds assert instead,
// so the release-path expectations are compiled out there.
TEST(ScanPushdownTest, MixingBatchAndRowModesIsAnError) {
#ifdef NDEBUG
  auto env = NewMemEnv();
  LaserOptions options = test::TinyTreeOptions(env.get(), "/db", 4, 3);
  std::unique_ptr<LaserDB> db;
  ASSERT_TRUE(LaserDB::Open(options, &db).ok());
  for (uint64_t k = 0; k < 50; ++k) {
    ASSERT_TRUE(db->Insert(k, test::TestRow(k, 4)).ok());
  }

  {
    // Batch first: the row API is then off limits.
    auto scan = db->NewScan(0, 49, {1, 2});
    ScanBatch batch;
    ASSERT_GT(scan->NextBatch(&batch, 8), 0u);
    EXPECT_FALSE(scan->Valid());
    EXPECT_FALSE(scan->status().ok());
    // The batch side keeps working; the error sticks in status().
    EXPECT_GT(scan->NextBatch(&batch, 8), 0u);
    EXPECT_FALSE(scan->status().ok());
  }
  {
    // Row first: NextBatch and AggregateAll are then off limits.
    auto scan = db->NewScan(0, 49, {1, 2});
    ASSERT_TRUE(scan->Valid());
    ScanBatch batch;
    EXPECT_EQ(scan->NextBatch(&batch, 8), 0u);
    EXPECT_FALSE(scan->status().ok());
    ScanAggregates aggs;
    EXPECT_FALSE(scan->AggregateAll(&aggs).ok());
  }
  {
    // AggregateAll is a batch-mode consumer.
    auto scan = db->NewScan(0, 49, {1, 2});
    ScanAggregates aggs;
    ASSERT_TRUE(scan->AggregateAll(&aggs).ok());
    EXPECT_EQ(aggs.rows, 50u);
    EXPECT_FALSE(scan->Valid());
    EXPECT_FALSE(scan->status().ok());
  }
#else
  GTEST_SKIP() << "debug builds assert on mode mixing";
#endif
}

// Zone-map aggregation fold: over a compacted tree, AggregateAll answers
// whole blocks from zone-map summaries (per-column count/sum plus min/max)
// without decoding them. The fold must (a) actually fire — the
// aggs_from_zonemap counter moves — and (b) agree exactly with the
// row-materializing reference, with and without predicates, including after
// updates and deletes reintroduce overlap that makes folds unprovable.
// Row/batch consumers over the same tree must never fold (they need the rows).
TEST(ScanPushdownTest, AggregateAllFoldsFromZoneMaps) {
  struct FoldCase {
    test::DesignParam design;
    ColumnSet projection;
  };
  // Row-only folds a full projection; CG designs fold when the projection
  // stays inside one group's columns.
  const std::vector<FoldCase> cases = {
      {{"row", 0}, MakeColumnRange(1, kColumns)},
      {{"cg3", 3}, {1}},
      {{"col", 1}, {4}},
  };
  for (const FoldCase& fold_case : cases) {
    SCOPED_TRACE(fold_case.design.name);
    Random rng(0xf01dab1e);
    auto env = NewMemEnv();
    LaserOptions options =
        test::TinyTreeOptions(env.get(), "/db", kColumns, kLevels);
    options.cg_config = test::DesignConfig(fold_case.design, kColumns, kLevels);
    std::unique_ptr<LaserDB> db;
    ASSERT_TRUE(LaserDB::Open(options, &db).ok());

    Model model;
    for (uint64_t key = 0; key < kKeySpace; ++key) {
      std::vector<ColumnValue> row(kColumns);
      for (int c = 0; c < kColumns; ++c) row[c] = rng.Uniform(1u << 30);
      ASSERT_TRUE(db->Insert(key, row).ok());
      ModelRow& mrow = model[key];
      for (int c = 0; c < kColumns; ++c) mrow[c + 1] = row[c];
    }
    ASSERT_TRUE(db->CompactUntilStable().ok());

    const ColumnSet& projection = fold_case.projection;
    const auto check = [&](const ScanSpec& spec, const char* what) {
      const auto want = FoldRows(
          FilterRows(ModelScan(model, 0, kKeySpace, projection), projection,
                     spec),
          projection.size());
      auto scan = db->NewScan(0, kKeySpace, projection, spec);
      ASSERT_NE(scan, nullptr) << what;
      ScanAggregates got;
      ASSERT_TRUE(scan->AggregateAll(&got).ok()) << what;
      EXPECT_EQ(got.rows, want.rows) << what;
      EXPECT_EQ(got.counts, want.counts) << what;
      EXPECT_EQ(got.sums, want.sums) << what;
      EXPECT_EQ(got.minima, want.minima) << what;
      EXPECT_EQ(got.maxima, want.maxima) << what;
    };

    // Predicate-free full-range aggregate: compacted single-version blocks
    // inside sole-contributor windows fold wholesale.
    uint64_t base = db->stats().aggs_from_zonemap.load();
    ASSERT_NO_FATAL_FAILURE(check(ScanSpec(), "predicate-free"));
    EXPECT_GT(db->stats().aggs_from_zonemap.load(), base)
        << "fold never fired on a compacted tree";

    // An always-true predicate is provable from min/max alone: still folds.
    ScanSpec all_match;
    all_match.predicates.push_back(
        {projection[0], PredOp::kLe, UINT64_MAX, 0});
    base = db->stats().aggs_from_zonemap.load();
    ASSERT_NO_FATAL_FAILURE(check(all_match, "all-match predicate"));
    EXPECT_GT(db->stats().aggs_from_zonemap.load(), base)
        << "fold never fired under an all-match predicate";

    // A selective predicate: blocks that are not provably all-match decode
    // and filter row by row; the answer stays exact either way.
    ScanSpec selective;
    selective.predicates.push_back({projection[0], PredOp::kGe, 1u << 29, 0});
    ASSERT_NO_FATAL_FAILURE(check(selective, "selective predicate"));

    // Row-materializing consumers never fold: every row still comes back.
    base = db->stats().aggs_from_zonemap.load();
    EXPECT_EQ(RowApiScan(db.get(), 0, kKeySpace, projection).size(),
              model.size());
    {
      auto scan = db->NewScan(0, kKeySpace, projection);
      ScanBatch batch;
      size_t rows = 0;
      while (size_t n = scan->NextBatch(&batch, 64)) rows += n;
      EXPECT_EQ(rows, model.size());
    }
    EXPECT_EQ(db->stats().aggs_from_zonemap.load(), base)
        << "a row-materializing scan folded blocks away";

    // Updates and deletes: the fresh L0 run overlaps the deep levels, so
    // sole-contributor windows shrink and most folds stop being provable —
    // answers must stay exact through the merged path.
    for (uint64_t key = 0; key < kKeySpace; key += 3) {
      ASSERT_TRUE(db->Update(key, {{projection[0], key}}).ok());
      model[key][projection[0]] = key;
    }
    for (uint64_t key = 1; key < kKeySpace; key += 7) {
      ASSERT_TRUE(db->Delete(key).ok());
      model.erase(key);
    }
    ASSERT_TRUE(db->Flush().ok());
    ASSERT_NO_FATAL_FAILURE(check(ScanSpec(), "overlapped predicate-free"));
    ASSERT_NO_FATAL_FAILURE(check(selective, "overlapped selective"));

    // After recompaction: answers stay exact whether or not folds resume
    // (the stable tree may legitimately keep overlapping levels, which
    // suppresses sole-contributor windows and with them every fold).
    ASSERT_TRUE(db->CompactUntilStable().ok());
    ASSERT_NO_FATAL_FAILURE(check(ScanSpec(), "recompacted predicate-free"));
    ASSERT_NO_FATAL_FAILURE(check(selective, "recompacted selective"));
  }
}

// NextBatch with max_rows == 0 is a harmless no-op that loses nothing.
TEST(ScanBatchTest, ZeroMaxRows) {
  auto env = NewMemEnv();
  LaserOptions options = test::TinyTreeOptions(env.get(), "/db", 4, 3);
  std::unique_ptr<LaserDB> db;
  ASSERT_TRUE(LaserDB::Open(options, &db).ok());
  for (uint64_t k = 0; k < 10; ++k) {
    ASSERT_TRUE(db->Insert(k, test::TestRow(k, 4)).ok());
  }
  auto scan = db->NewScan(0, 9, {1});
  ScanBatch batch;
  EXPECT_EQ(scan->NextBatch(&batch, 0), 0u);
  EXPECT_EQ(scan->NextBatch(&batch, 100), 10u);
}

}  // namespace
}  // namespace laser
