// Unit tests for the utility substrate: Status, Slice, coding, CRC32C,
// hashing, Random, Arena, Histogram, LightLZ codec, Env implementations.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "util/arena.h"
#include "util/codec.h"
#include "util/coding.h"
#include "util/crc32c.h"
#include "util/env.h"
#include "util/hash.h"
#include "util/histogram.h"
#include "util/random.h"
#include "util/slice.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace laser {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing key");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "NotFound: missing key");
}

TEST(StatusTest, CopyPreservesError) {
  Status s = Status::Corruption("bad block");
  Status t = s;
  EXPECT_TRUE(t.IsCorruption());
  EXPECT_EQ(t.ToString(), s.ToString());
}

TEST(StatusTest, MoveLeavesSourceOk) {
  Status s = Status::IOError("disk");
  Status t = std::move(s);
  EXPECT_TRUE(t.IsIOError());
}

TEST(StatusTest, AllCodesRoundTrip) {
  EXPECT_TRUE(Status::NotFound().IsNotFound());
  EXPECT_TRUE(Status::Corruption().IsCorruption());
  EXPECT_TRUE(Status::NotSupported().IsNotSupported());
  EXPECT_TRUE(Status::InvalidArgument().IsInvalidArgument());
  EXPECT_TRUE(Status::IOError().IsIOError());
  EXPECT_TRUE(Status::Busy().IsBusy());
}

// ----------------------------------------------------------------- Slice --

TEST(SliceTest, Basics) {
  Slice s("hello");
  EXPECT_EQ(s.size(), 5u);
  EXPECT_EQ(s[1], 'e');
  EXPECT_FALSE(s.empty());
  s.remove_prefix(2);
  EXPECT_EQ(s.ToString(), "llo");
}

TEST(SliceTest, Compare) {
  EXPECT_LT(Slice("a").compare(Slice("b")), 0);
  EXPECT_GT(Slice("b").compare(Slice("a")), 0);
  EXPECT_EQ(Slice("ab").compare(Slice("ab")), 0);
  EXPECT_LT(Slice("ab").compare(Slice("abc")), 0);  // prefix sorts first
}

TEST(SliceTest, StartsWith) {
  EXPECT_TRUE(Slice("hello").starts_with(Slice("he")));
  EXPECT_FALSE(Slice("hello").starts_with(Slice("el")));
}

// ---------------------------------------------------------------- Coding --

TEST(CodingTest, Fixed32RoundTrip) {
  std::string s;
  for (uint32_t v : {0u, 1u, 255u, 0xdeadbeefu, 0xffffffffu}) {
    s.clear();
    PutFixed32(&s, v);
    ASSERT_EQ(s.size(), 4u);
    EXPECT_EQ(DecodeFixed32(s.data()), v);
  }
}

TEST(CodingTest, Fixed64RoundTrip) {
  std::string s;
  PutFixed64(&s, 0x0123456789abcdefull);
  EXPECT_EQ(DecodeFixed64(s.data()), 0x0123456789abcdefull);
}

TEST(CodingTest, Varint32RoundTrip) {
  std::string s;
  std::vector<uint32_t> values;
  for (uint32_t i = 0; i < 32; ++i) {
    values.push_back(1u << i);
    values.push_back((1u << i) - 1);
  }
  for (uint32_t v : values) PutVarint32(&s, v);
  Slice in(s);
  for (uint32_t v : values) {
    uint32_t decoded;
    ASSERT_TRUE(GetVarint32(&in, &decoded));
    EXPECT_EQ(decoded, v);
  }
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, Varint64RoundTrip) {
  std::string s;
  std::vector<uint64_t> values = {0, 127, 128, 16383, 16384, (1ull << 56),
                                  ~0ull};
  for (uint64_t v : values) PutVarint64(&s, v);
  Slice in(s);
  for (uint64_t v : values) {
    uint64_t decoded;
    ASSERT_TRUE(GetVarint64(&in, &decoded));
    EXPECT_EQ(decoded, v);
  }
}

TEST(CodingTest, VarintLengthMatchesEncoding) {
  for (uint64_t v : {0ull, 127ull, 128ull, 1ull << 40, ~0ull}) {
    std::string s;
    PutVarint64(&s, v);
    EXPECT_EQ(static_cast<int>(s.size()), VarintLength(v));
  }
}

TEST(CodingTest, TruncatedVarintFails) {
  std::string s;
  PutVarint32(&s, 1u << 30);
  Slice in(s.data(), s.size() - 1);
  uint32_t v;
  EXPECT_FALSE(GetVarint32(&in, &v));
}

TEST(CodingTest, LengthPrefixedSlice) {
  std::string s;
  PutLengthPrefixedSlice(&s, Slice("abc"));
  PutLengthPrefixedSlice(&s, Slice(""));
  PutLengthPrefixedSlice(&s, Slice("0123456789"));
  Slice in(s);
  Slice v;
  ASSERT_TRUE(GetLengthPrefixedSlice(&in, &v));
  EXPECT_EQ(v.ToString(), "abc");
  ASSERT_TRUE(GetLengthPrefixedSlice(&in, &v));
  EXPECT_EQ(v.ToString(), "");
  ASSERT_TRUE(GetLengthPrefixedSlice(&in, &v));
  EXPECT_EQ(v.ToString(), "0123456789");
}

TEST(CodingTest, BigEndianKeyPreservesOrder) {
  // memcmp order of encodings must equal numeric order.
  std::vector<uint64_t> keys = {0, 1, 255, 256, 1ull << 31, 1ull << 32,
                                (1ull << 63) + 5, ~0ull};
  for (size_t i = 0; i + 1 < keys.size(); ++i) {
    const std::string a = EncodeKey64(keys[i]);
    const std::string b = EncodeKey64(keys[i + 1]);
    EXPECT_LT(Slice(a).compare(Slice(b)), 0) << keys[i] << " vs " << keys[i + 1];
    EXPECT_EQ(DecodeKey64(Slice(a)), keys[i]);
  }
}

// ---------------------------------------------------------------- CRC32C --

TEST(Crc32cTest, KnownValues) {
  // Standard test vector: 32 bytes of zeros.
  char buf[32];
  memset(buf, 0, sizeof(buf));
  EXPECT_EQ(crc32c::Value(buf, sizeof(buf)), 0x8a9136aau);
  memset(buf, 0xff, sizeof(buf));
  EXPECT_EQ(crc32c::Value(buf, sizeof(buf)), 0x62a8ab43u);
}

TEST(Crc32cTest, ExtendEqualsWhole) {
  const std::string data = "hello world, this is a crc test";
  const uint32_t whole = crc32c::Value(data.data(), data.size());
  const uint32_t part = crc32c::Extend(crc32c::Value(data.data(), 10),
                                       data.data() + 10, data.size() - 10);
  EXPECT_EQ(whole, part);
}

TEST(Crc32cTest, MaskUnmaskRoundTrip) {
  for (uint32_t crc : {0u, 1u, 0xdeadbeefu, ~0u}) {
    EXPECT_EQ(crc32c::Unmask(crc32c::Mask(crc)), crc);
    EXPECT_NE(crc32c::Mask(crc), crc);
  }
}

TEST(Crc32cTest, DetectsCorruption) {
  std::string data = "some block contents";
  const uint32_t crc = crc32c::Value(data.data(), data.size());
  data[3] ^= 0x40;
  EXPECT_NE(crc32c::Value(data.data(), data.size()), crc);
}

// ------------------------------------------------------------------ Hash --

TEST(HashTest, DeterministicAndSeedSensitive) {
  const std::string data = "hash me";
  EXPECT_EQ(Hash32(data.data(), data.size(), 7),
            Hash32(data.data(), data.size(), 7));
  EXPECT_NE(Hash32(data.data(), data.size(), 7),
            Hash32(data.data(), data.size(), 8));
  EXPECT_EQ(Hash64(data.data(), data.size(), 7),
            Hash64(data.data(), data.size(), 7));
}

TEST(HashTest, SpreadsBits) {
  std::set<uint32_t> values;
  for (int i = 0; i < 1000; ++i) {
    std::string s = "key" + std::to_string(i);
    values.insert(Hash32(s.data(), s.size(), 0));
  }
  EXPECT_GT(values.size(), 990u);  // essentially no collisions
}

// ---------------------------------------------------------------- Random --

TEST(RandomTest, UniformStaysInRange) {
  Random rng(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    const uint64_t r = rng.Range(10, 20);
    EXPECT_GE(r, 10u);
    EXPECT_LT(r, 20u);
  }
}

TEST(RandomTest, DeterministicForSeed) {
  Random a(42);
  Random b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, GaussianMoments) {
  Random rng(7);
  double sum = 0;
  double sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian(5.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

// ----------------------------------------------------------------- Arena --

TEST(ArenaTest, AllocatesUsableMemory) {
  Arena arena;
  char* p = arena.Allocate(100);
  memset(p, 0xab, 100);
  char* q = arena.Allocate(100);
  EXPECT_NE(p, q);
  memset(q, 0xcd, 100);
  EXPECT_EQ(static_cast<unsigned char>(p[0]), 0xab);  // no overlap
}

TEST(ArenaTest, AlignedAllocations) {
  Arena arena;
  for (int i = 0; i < 100; ++i) {
    arena.Allocate(1);  // misalign the bump pointer
    char* p = arena.AllocateAligned(24);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % alignof(std::max_align_t), 0u);
  }
}

TEST(ArenaTest, MemoryUsageGrows) {
  Arena arena;
  const size_t before = arena.MemoryUsage();
  arena.Allocate(100000);
  EXPECT_GT(arena.MemoryUsage(), before + 99999);
}

// ------------------------------------------------------------- Histogram --

TEST(HistogramTest, Percentiles) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Add(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.Min(), 1);
  EXPECT_DOUBLE_EQ(h.Max(), 100);
  EXPECT_NEAR(h.Percentile(50), 50.5, 0.01);
  EXPECT_NEAR(h.Average(), 50.5, 1e-9);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a;
  Histogram b;
  a.Add(1);
  b.Add(3);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.Average(), 2);
}

// --------------------------------------------------------------- LightLZ --

TEST(CodecTest, RoundTripSimple) {
  const std::string input = "abcabcabcabcabcabc hello hello hello";
  std::string compressed;
  LightLZCompress(Slice(input), &compressed);
  std::string output;
  ASSERT_TRUE(LightLZDecompress(Slice(compressed), &output).ok());
  EXPECT_EQ(output, input);
}

TEST(CodecTest, CompressesRepetitiveData) {
  std::string input;
  for (int i = 0; i < 1000; ++i) input += "4-byte int columns! ";
  std::string compressed;
  LightLZCompress(Slice(input), &compressed);
  EXPECT_LT(compressed.size(), input.size() / 4);
  std::string output;
  ASSERT_TRUE(LightLZDecompress(Slice(compressed), &output).ok());
  EXPECT_EQ(output, input);
}

TEST(CodecTest, EmptyInput) {
  std::string compressed;
  LightLZCompress(Slice(""), &compressed);
  std::string output;
  ASSERT_TRUE(LightLZDecompress(Slice(compressed), &output).ok());
  EXPECT_TRUE(output.empty());
}

TEST(CodecTest, RejectsCorruptInput) {
  const std::string input(1000, 'x');
  std::string compressed;
  LightLZCompress(Slice(input), &compressed);
  std::string corrupted = compressed;
  corrupted[corrupted.size() / 2] ^= 0xff;
  std::string output;
  // Either an error or a wrong-length result; never a crash. Flipping a bit
  // may keep the stream well-formed, so only check for no false "identical".
  Status s = LightLZDecompress(Slice(corrupted), &output);
  if (s.ok()) {
    EXPECT_NE(output, input);
  }
}

// Property sweep: random binary data of many sizes round-trips.
class CodecRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(CodecRoundTrip, RandomData) {
  Random rng(GetParam());
  std::string input;
  const int n = GetParam() * 379 % 10000;
  for (int i = 0; i < n; ++i) {
    // Mix random bytes and runs to exercise both literal and copy paths.
    if (rng.OneIn(4)) {
      input.append(rng.Uniform(30) + 4, static_cast<char>(rng.Uniform(256)));
    } else {
      input.push_back(static_cast<char>(rng.Uniform(256)));
    }
  }
  std::string compressed;
  LightLZCompress(Slice(input), &compressed);
  std::string output;
  ASSERT_TRUE(LightLZDecompress(Slice(compressed), &output).ok());
  EXPECT_EQ(output, input);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CodecRoundTrip, ::testing::Range(1, 20));

// ------------------------------------------------------------------- Env --

class EnvTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    if (GetParam()) {
      owned_ = NewMemEnv();
      env_ = owned_.get();
      dir_ = "/testdir";
    } else {
      env_ = Env::Default();
      dir_ = ::testing::TempDir() + "laser_env_test";
      env_->RemoveDir(dir_);
    }
    ASSERT_TRUE(env_->CreateDir(dir_).ok());
  }

  void TearDown() override {
    if (!GetParam()) env_->RemoveDir(dir_);
  }

  std::unique_ptr<Env> owned_;
  Env* env_ = nullptr;
  std::string dir_;
};

TEST_P(EnvTest, WriteReadRoundTrip) {
  const std::string fname = dir_ + "/file1";
  ASSERT_TRUE(env_->WriteStringToFile(Slice("hello world"), fname).ok());
  std::string data;
  ASSERT_TRUE(env_->ReadFileToString(fname, &data).ok());
  EXPECT_EQ(data, "hello world");
  uint64_t size;
  ASSERT_TRUE(env_->GetFileSize(fname, &size).ok());
  EXPECT_EQ(size, 11u);
}

TEST_P(EnvTest, RandomAccessRead) {
  const std::string fname = dir_ + "/file2";
  ASSERT_TRUE(env_->WriteStringToFile(Slice("0123456789"), fname).ok());
  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(env_->NewRandomAccessFile(fname, &file).ok());
  char scratch[16];
  Slice result;
  ASSERT_TRUE(file->Read(3, 4, &result, scratch).ok());
  EXPECT_EQ(result.ToString(), "3456");
  ASSERT_TRUE(file->Read(8, 10, &result, scratch).ok());
  EXPECT_EQ(result.ToString(), "89");  // short read at EOF
}

TEST_P(EnvTest, RenameIsAtomicReplace) {
  const std::string a = dir_ + "/a";
  const std::string b = dir_ + "/b";
  ASSERT_TRUE(env_->WriteStringToFile(Slice("new"), a).ok());
  ASSERT_TRUE(env_->WriteStringToFile(Slice("old"), b).ok());
  ASSERT_TRUE(env_->RenameFile(a, b).ok());
  EXPECT_FALSE(env_->FileExists(a));
  std::string data;
  ASSERT_TRUE(env_->ReadFileToString(b, &data).ok());
  EXPECT_EQ(data, "new");
}

TEST_P(EnvTest, GetChildrenListsFiles) {
  ASSERT_TRUE(env_->WriteStringToFile(Slice("x"), dir_ + "/c1").ok());
  ASSERT_TRUE(env_->WriteStringToFile(Slice("y"), dir_ + "/c2").ok());
  std::vector<std::string> children;
  ASSERT_TRUE(env_->GetChildren(dir_, &children).ok());
  std::set<std::string> names(children.begin(), children.end());
  EXPECT_TRUE(names.count("c1"));
  EXPECT_TRUE(names.count("c2"));
}

TEST_P(EnvTest, RemoveFile) {
  const std::string fname = dir_ + "/victim";
  ASSERT_TRUE(env_->WriteStringToFile(Slice("z"), fname).ok());
  ASSERT_TRUE(env_->RemoveFile(fname).ok());
  EXPECT_FALSE(env_->FileExists(fname));
  EXPECT_FALSE(env_->RemoveFile(fname).ok());
}

TEST_P(EnvTest, MissingFileIsError) {
  std::unique_ptr<SequentialFile> f;
  EXPECT_FALSE(env_->NewSequentialFile(dir_ + "/nope", &f).ok());
}

INSTANTIATE_TEST_SUITE_P(MemAndPosix, EnvTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "MemEnv" : "PosixEnv";
                         });

// ------------------------------------------------------------ ThreadPool --

TEST(ThreadPoolTest, RunsAllJobs) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPool) {
  ThreadPool pool(2);
  pool.WaitIdle();  // must not hang
  SUCCEED();
}

}  // namespace
}  // namespace laser
