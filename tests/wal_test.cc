// WAL tests: record round-trips, block-spanning fragmentation, torn tails,
// CRC detection.

#include <gtest/gtest.h>

#include <string>

#include "laser/options.h"
#include "util/env.h"
#include "util/env_fault.h"
#include "util/random.h"
#include "wal/log_reader.h"
#include "wal/log_writer.h"

namespace laser {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = NewMemEnv();
    fname_ = "/wal_test_log";
  }

  std::unique_ptr<wal::LogWriter> NewWriter() {
    std::unique_ptr<WritableFile> file;
    EXPECT_TRUE(env_->NewWritableFile(fname_, &file).ok());
    return std::make_unique<wal::LogWriter>(std::move(file));
  }

  std::unique_ptr<wal::LogReader> NewReader() {
    std::unique_ptr<SequentialFile> file;
    EXPECT_TRUE(env_->NewSequentialFile(fname_, &file).ok());
    return std::make_unique<wal::LogReader>(std::move(file));
  }

  std::string ReadFile() {
    std::string data;
    EXPECT_TRUE(env_->ReadFileToString(fname_, &data).ok());
    return data;
  }

  void WriteFile(const std::string& data) {
    EXPECT_TRUE(env_->WriteStringToFile(Slice(data), fname_).ok());
  }

  std::unique_ptr<Env> env_;
  std::string fname_;
};

TEST_F(WalTest, EmptyLog) {
  NewWriter()->Close();
  auto reader = NewReader();
  Slice record;
  std::string scratch;
  EXPECT_FALSE(reader->ReadRecord(&record, &scratch));
  EXPECT_FALSE(reader->corruption_detected());
}

TEST_F(WalTest, SmallRecordsRoundTrip) {
  auto writer = NewWriter();
  ASSERT_TRUE(writer->AddRecord(Slice("one")).ok());
  ASSERT_TRUE(writer->AddRecord(Slice("two")).ok());
  ASSERT_TRUE(writer->AddRecord(Slice("")).ok());
  ASSERT_TRUE(writer->AddRecord(Slice("four")).ok());
  writer->Close();

  auto reader = NewReader();
  Slice record;
  std::string scratch;
  ASSERT_TRUE(reader->ReadRecord(&record, &scratch));
  EXPECT_EQ(record.ToString(), "one");
  ASSERT_TRUE(reader->ReadRecord(&record, &scratch));
  EXPECT_EQ(record.ToString(), "two");
  ASSERT_TRUE(reader->ReadRecord(&record, &scratch));
  EXPECT_EQ(record.ToString(), "");
  ASSERT_TRUE(reader->ReadRecord(&record, &scratch));
  EXPECT_EQ(record.ToString(), "four");
  EXPECT_FALSE(reader->ReadRecord(&record, &scratch));
}

TEST_F(WalTest, LargeRecordSpansBlocks) {
  Random rng(9);
  std::string big(3 * wal::kBlockSize + 517, '\0');
  for (char& c : big) c = static_cast<char>(rng.Uniform(256));

  auto writer = NewWriter();
  ASSERT_TRUE(writer->AddRecord(Slice("before")).ok());
  ASSERT_TRUE(writer->AddRecord(Slice(big)).ok());
  ASSERT_TRUE(writer->AddRecord(Slice("after")).ok());
  writer->Close();

  auto reader = NewReader();
  Slice record;
  std::string scratch;
  ASSERT_TRUE(reader->ReadRecord(&record, &scratch));
  EXPECT_EQ(record.ToString(), "before");
  ASSERT_TRUE(reader->ReadRecord(&record, &scratch));
  EXPECT_EQ(record.ToString(), big);
  ASSERT_TRUE(reader->ReadRecord(&record, &scratch));
  EXPECT_EQ(record.ToString(), "after");
}

TEST_F(WalTest, ManyRecordsAcrossBlockBoundaries) {
  auto writer = NewWriter();
  std::vector<std::string> records;
  Random rng(4242);
  for (int i = 0; i < 500; ++i) {
    records.push_back(std::string(rng.Uniform(300), static_cast<char>('a' + i % 26)));
    ASSERT_TRUE(writer->AddRecord(Slice(records.back())).ok());
  }
  writer->Close();

  auto reader = NewReader();
  Slice record;
  std::string scratch;
  for (const std::string& expected : records) {
    ASSERT_TRUE(reader->ReadRecord(&record, &scratch));
    EXPECT_EQ(record.ToString(), expected);
  }
  EXPECT_FALSE(reader->ReadRecord(&record, &scratch));
}

TEST_F(WalTest, TornTailStopsCleanly) {
  auto writer = NewWriter();
  ASSERT_TRUE(writer->AddRecord(Slice("complete")).ok());
  ASSERT_TRUE(writer->AddRecord(Slice(std::string(200, 'x'))).ok());
  writer->Close();

  // Chop off the middle of the second record (simulating a crash).
  std::string data = ReadFile();
  WriteFile(data.substr(0, data.size() - 150));

  auto reader = NewReader();
  Slice record;
  std::string scratch;
  ASSERT_TRUE(reader->ReadRecord(&record, &scratch));
  EXPECT_EQ(record.ToString(), "complete");
  EXPECT_FALSE(reader->ReadRecord(&record, &scratch));  // tail lost, no crash
}

TEST_F(WalTest, CorruptedRecordDetected) {
  auto writer = NewWriter();
  ASSERT_TRUE(writer->AddRecord(Slice("first")).ok());
  ASSERT_TRUE(writer->AddRecord(Slice("second")).ok());
  writer->Close();

  std::string data = ReadFile();
  data[wal::kHeaderSize + 2] ^= 0x01;  // flip a payload bit of record 1
  WriteFile(data);

  auto reader = NewReader();
  Slice record;
  std::string scratch;
  EXPECT_FALSE(reader->ReadRecord(&record, &scratch));
  EXPECT_TRUE(reader->corruption_detected());
}

TEST_F(WalTest, RecordExactlyFillingBlock) {
  // Payload sized so header+payload == kBlockSize exactly.
  const std::string payload(wal::kBlockSize - wal::kHeaderSize, 'q');
  auto writer = NewWriter();
  ASSERT_TRUE(writer->AddRecord(Slice(payload)).ok());
  ASSERT_TRUE(writer->AddRecord(Slice("next")).ok());
  writer->Close();

  auto reader = NewReader();
  Slice record;
  std::string scratch;
  ASSERT_TRUE(reader->ReadRecord(&record, &scratch));
  EXPECT_EQ(record.size(), payload.size());
  ASSERT_TRUE(reader->ReadRecord(&record, &scratch));
  EXPECT_EQ(record.ToString(), "next");
}

TEST_F(WalTest, TruncatedHeaderAtTailStopsCleanly) {
  auto writer = NewWriter();
  ASSERT_TRUE(writer->AddRecord(Slice("durable")).ok());
  ASSERT_TRUE(writer->AddRecord(Slice("casualty")).ok());
  writer->Close();

  // Crash mid-write of the second record's header: fewer than kHeaderSize
  // bytes of it survive.
  std::string data = ReadFile();
  WriteFile(data.substr(0, wal::kHeaderSize + 7 + 3));  // "durable" + 3 bytes

  auto reader = NewReader();
  Slice record;
  std::string scratch;
  ASSERT_TRUE(reader->ReadRecord(&record, &scratch));
  EXPECT_EQ(record.ToString(), "durable");
  EXPECT_FALSE(reader->ReadRecord(&record, &scratch));
}

TEST_F(WalTest, TornTailMidSpanningRecord) {
  // A record spanning three blocks, torn inside its middle fragment: the
  // earlier complete record replays; the partial one is dropped without a
  // crash.
  std::string big(2 * wal::kBlockSize + 100, 'z');
  auto writer = NewWriter();
  ASSERT_TRUE(writer->AddRecord(Slice("intact")).ok());
  ASSERT_TRUE(writer->AddRecord(Slice(big)).ok());
  writer->Close();

  std::string data = ReadFile();
  WriteFile(data.substr(0, wal::kBlockSize + wal::kBlockSize / 2));

  auto reader = NewReader();
  Slice record;
  std::string scratch;
  ASSERT_TRUE(reader->ReadRecord(&record, &scratch));
  EXPECT_EQ(record.ToString(), "intact");
  EXPECT_FALSE(reader->ReadRecord(&record, &scratch));
}

TEST_F(WalTest, ReopenAfterReopen) {
  // Two crash/recovery cycles, the way the engine reopens: replay the old
  // log, rewrite the survivors into a fresh log, append the new generation.
  auto replay = [&] {
    std::vector<std::string> records;
    auto reader = NewReader();
    Slice record;
    std::string scratch;
    while (reader->ReadRecord(&record, &scratch)) {
      records.push_back(record.ToString());
    }
    EXPECT_FALSE(reader->corruption_detected());
    return records;
  };

  {
    auto writer = NewWriter();
    ASSERT_TRUE(writer->AddRecord(Slice("gen1-a")).ok());
    ASSERT_TRUE(writer->AddRecord(Slice("gen1-b")).ok());
    writer->Close();
  }

  // First reopen: recover gen1, write a fresh log with survivors + gen2,
  // then tear off the tail of the last record (crash during gen2).
  {
    std::vector<std::string> recovered = replay();
    ASSERT_EQ(recovered.size(), 2u);
    auto writer = NewWriter();  // truncates: positioned at file start
    for (const std::string& r : recovered) {
      ASSERT_TRUE(writer->AddRecord(Slice(r)).ok());
    }
    ASSERT_TRUE(writer->AddRecord(Slice("gen2-a")).ok());
    ASSERT_TRUE(writer->AddRecord(Slice(std::string(300, 'w'))).ok());
    writer->Close();
    std::string data = ReadFile();
    WriteFile(data.substr(0, data.size() - 200));
  }

  // Second reopen: the torn record is gone, everything durable survives.
  {
    std::vector<std::string> recovered = replay();
    ASSERT_EQ(recovered.size(), 3u);
    EXPECT_EQ(recovered[0], "gen1-a");
    EXPECT_EQ(recovered[1], "gen1-b");
    EXPECT_EQ(recovered[2], "gen2-a");
    auto writer = NewWriter();
    for (const std::string& r : recovered) {
      ASSERT_TRUE(writer->AddRecord(Slice(r)).ok());
    }
    ASSERT_TRUE(writer->AddRecord(Slice("gen3-a")).ok());
    writer->Close();
  }

  // Third open reads all three generations in order.
  std::vector<std::string> final_records = replay();
  ASSERT_EQ(final_records.size(), 4u);
  EXPECT_EQ(final_records[3], "gen3-a");
}

// The fsync-failure / poisoning contract, under both acked==durable sync
// cadences. kSyncEveryWrite fsyncs after every record; kSyncEveryGroup
// appends a whole commit group's records and fsyncs once — the engine acks
// either all of a group or none of it, so on failure the entire unsynced
// group must vanish while every previously synced group replays.
class WalSyncFailureTest : public WalTest,
                           public ::testing::WithParamInterface<WalSyncPolicy> {};

TEST_P(WalSyncFailureTest, FaultInjectedSyncFailureRecoversPrefix) {
  // An fsync that fails must surface as a Status, and after the simulated
  // power loss only the prefix synced before the failure may replay.
  const bool per_write = GetParam() == WalSyncPolicy::kSyncEveryWrite;
  FaultInjectionEnv fault(env_.get());
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(fault.NewWritableFile(fname_, &file).ok());
  wal::LogWriter writer(std::move(file));

  if (per_write) {
    ASSERT_TRUE(writer.AddRecord(Slice("acked-1")).ok());
    ASSERT_TRUE(writer.Sync().ok());
    ASSERT_TRUE(writer.AddRecord(Slice("acked-2")).ok());
    ASSERT_TRUE(writer.Sync().ok());
    ASSERT_TRUE(writer.AddRecord(Slice("casualty")).ok());
  } else {
    // One sync covers the two-record group, as the group-commit leader does.
    ASSERT_TRUE(writer.AddRecord(Slice("acked-1")).ok());
    ASSERT_TRUE(writer.AddRecord(Slice("acked-2")).ok());
    ASSERT_TRUE(writer.Sync().ok());
    ASSERT_TRUE(writer.AddRecord(Slice("casualty-1")).ok());
    ASSERT_TRUE(writer.AddRecord(Slice("casualty-2")).ok());
  }
  EXPECT_GT(writer.unsynced_bytes(), 0u);
  fault.FailOperation(0);  // the next mutating op is the pending fsync
  EXPECT_FALSE(writer.Sync().ok());
  EXPECT_GT(writer.unsynced_bytes(), 0u);  // a failed sync is not a barrier
  writer.Close();

  fault.DropUnsyncedData();

  auto reader = NewReader();
  Slice record;
  std::string scratch;
  ASSERT_TRUE(reader->ReadRecord(&record, &scratch));
  EXPECT_EQ(record.ToString(), "acked-1");
  ASSERT_TRUE(reader->ReadRecord(&record, &scratch));
  EXPECT_EQ(record.ToString(), "acked-2");
  EXPECT_FALSE(reader->ReadRecord(&record, &scratch));
  EXPECT_FALSE(reader->corruption_detected());
}

INSTANTIATE_TEST_SUITE_P(SyncCadences, WalSyncFailureTest,
                         ::testing::Values(WalSyncPolicy::kSyncEveryWrite,
                                           WalSyncPolicy::kSyncEveryGroup),
                         [](const ::testing::TestParamInfo<WalSyncPolicy>& info) {
                           return info.param == WalSyncPolicy::kSyncEveryWrite
                                      ? "SyncEveryWrite"
                                      : "SyncEveryGroup";
                         });

TEST_F(WalTest, TrailerSmallerThanHeaderIsSkipped) {
  // Leave exactly 3 bytes at the end of a block: the writer zero-fills.
  const std::string first(wal::kBlockSize - wal::kHeaderSize - wal::kHeaderSize - 3,
                          'a');
  auto writer = NewWriter();
  ASSERT_TRUE(writer->AddRecord(Slice(first)).ok());
  ASSERT_TRUE(writer->AddRecord(Slice("")).ok());  // fills up to 3 spare bytes
  ASSERT_TRUE(writer->AddRecord(Slice("tail")).ok());
  writer->Close();

  auto reader = NewReader();
  Slice record;
  std::string scratch;
  ASSERT_TRUE(reader->ReadRecord(&record, &scratch));
  ASSERT_TRUE(reader->ReadRecord(&record, &scratch));
  ASSERT_TRUE(reader->ReadRecord(&record, &scratch));
  EXPECT_EQ(record.ToString(), "tail");
}

}  // namespace
}  // namespace laser
