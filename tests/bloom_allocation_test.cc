// Monkey bloom-allocation solver tests: optimality shape (bits non-increasing
// with level depth), budget conservation, crossover-to-zero behavior, and the
// LaserOptions plumbing that derives the per-level vector.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "cost/bloom_allocation.h"
#include "laser/options.h"
#include "util/env.h"

namespace laser {
namespace {

std::vector<double> GeometricLevels(int levels, double ratio,
                                    double level0 = 1000.0) {
  std::vector<double> entries(levels);
  double n = level0;
  for (int i = 0; i < levels; ++i) {
    entries[i] = n;
    n *= ratio;
  }
  return entries;
}

TEST(BloomAllocationTest, BitsNonIncreasingWithDepth) {
  for (const double ratio : {2.0, 4.0, 10.0}) {
    const auto entries = GeometricLevels(8, ratio);
    const auto alloc = SolveMonkeyAllocation(entries, 10.0);
    ASSERT_EQ(alloc.bits_per_key.size(), entries.size());
    for (size_t i = 1; i < alloc.bits_per_key.size(); ++i) {
      EXPECT_LE(alloc.bits_per_key[i], alloc.bits_per_key[i - 1] + 1e-9)
          << "ratio=" << ratio << " level=" << i;
    }
    // The deepest level must get strictly fewer bits than the shallowest:
    // a uniform answer would mean the solver did nothing.
    EXPECT_LT(alloc.bits_per_key.back(), alloc.bits_per_key.front() - 1.0);
  }
}

TEST(BloomAllocationTest, BudgetConservedWithinRounding) {
  const auto entries = GeometricLevels(8, 2.0);
  double total_entries = 0;
  for (double e : entries) total_entries += e;
  const double avg = 10.0;
  const auto alloc = SolveMonkeyAllocation(entries, avg);
  double spent = 0;
  for (size_t i = 0; i < entries.size(); ++i) {
    spent += entries[i] * alloc.bits_per_key[i];
  }
  // No level hit the 40-bit cap at this shape, so the optimum spends the
  // whole budget (up to float noise).
  EXPECT_NEAR(spent, avg * total_entries, avg * total_entries * 1e-9);
  EXPECT_NEAR(alloc.total_bits, spent, spent * 1e-9);
}

TEST(BloomAllocationTest, BeatsUniformOnExpectedFpSum) {
  for (const double ratio : {2.0, 4.0}) {
    const auto entries = GeometricLevels(9, ratio);
    const auto monkey = SolveMonkeyAllocation(entries, 10.0);
    const auto uniform = UniformAllocation(entries, 10.0);
    EXPECT_LT(monkey.expected_sum_fpr, uniform.expected_sum_fpr * 0.75)
        << "ratio=" << ratio;
  }
}

TEST(BloomAllocationTest, TinyBudgetZerosDeepLevelsFirst) {
  // At 0.5 bits/key average over a T=4 tree the unconstrained optimum goes
  // negative on the deepest level; the solver must clamp it to exactly zero
  // (no filter block), never to negative bits.
  const auto entries = GeometricLevels(8, 4.0);
  const auto alloc = SolveMonkeyAllocation(entries, 0.5);
  EXPECT_EQ(alloc.bits_per_key.back(), 0.0);
  for (size_t i = 0; i < alloc.bits_per_key.size(); ++i) {
    EXPECT_GE(alloc.bits_per_key[i], 0.0) << i;
  }
  // The freed memory concentrates in the shallow levels.
  EXPECT_GT(alloc.bits_per_key.front(), 0.5);
  // Zeroed levels contribute fpr=1 each to the expected sum.
  EXPECT_GE(alloc.expected_sum_fpr, 1.0);
}

TEST(BloomAllocationTest, CapBoundsShallowLevels) {
  // A huge budget would give tiny levels absurd allocations; the cap holds.
  const auto entries = GeometricLevels(6, 10.0);
  const auto alloc = SolveMonkeyAllocation(entries, 35.0, 40.0);
  for (double b : alloc.bits_per_key) {
    EXPECT_LE(b, 40.0 + 1e-9);
    EXPECT_GE(b, 0.0);
  }
  EXPECT_EQ(alloc.bits_per_key.front(), 40.0);
}

TEST(BloomAllocationTest, DegenerateInputs) {
  EXPECT_TRUE(SolveMonkeyAllocation({}, 10.0).bits_per_key.empty());
  const auto zero_budget = SolveMonkeyAllocation({100.0, 200.0}, 0.0);
  EXPECT_EQ(zero_budget.bits_per_key, (std::vector<double>{0.0, 0.0}));
  // Empty levels get no bits and don't eat budget.
  const auto holes = SolveMonkeyAllocation({100.0, 0.0, 400.0}, 10.0);
  EXPECT_EQ(holes.bits_per_key[1], 0.0);
  EXPECT_GT(holes.bits_per_key[0], holes.bits_per_key[2]);
  EXPECT_NEAR(holes.total_bits, 10.0 * 500.0, 1e-6);
}

TEST(BloomAllocationTest, EqualLevelsDegradeToUniform) {
  const auto alloc = SolveMonkeyAllocation({500.0, 500.0, 500.0}, 8.0);
  for (double b : alloc.bits_per_key) EXPECT_NEAR(b, 8.0, 1e-9);
}

// -- probe-weighted objective --

TEST(BloomAllocationTest, UnitProbeWeightsMatchClassicMonkey) {
  const auto entries = GeometricLevels(8, 2.0);
  const auto plain = SolveMonkeyAllocation(entries, 10.0);
  const auto weighted =
      SolveMonkeyAllocation(entries, 10.0, 40.0, std::vector<double>(8, 1.0));
  // Any common scale factor on the weights must cancel (only ratios matter).
  const auto scaled =
      SolveMonkeyAllocation(entries, 10.0, 40.0, std::vector<double>(8, 123.0));
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_NEAR(weighted.bits_per_key[i], plain.bits_per_key[i], 1e-9) << i;
    EXPECT_NEAR(scaled.bits_per_key[i], plain.bits_per_key[i], 1e-9) << i;
  }
}

TEST(BloomAllocationTest, ProbeWeightsShiftBitsTowardHotLevels) {
  // Two equal-sized levels, one probed 8x as often: the optimum moves bits
  // from the cold filter to the hot one (fpr_i ∝ n_i/w_i at the optimum)
  // while spending exactly the same total memory.
  const std::vector<double> entries = {1000.0, 1000.0};
  const auto alloc = SolveMonkeyAllocation(entries, 10.0, 40.0, {8.0, 1.0});
  EXPECT_GT(alloc.bits_per_key[0], alloc.bits_per_key[1] + 1.0);
  EXPECT_NEAR(alloc.total_bits, 10.0 * 2000.0, 1e-6);
  // ln(8)/ln²2 ≈ 4.33 bits of separation in the unconstrained closed form.
  EXPECT_NEAR(alloc.bits_per_key[0] - alloc.bits_per_key[1],
              std::log(8.0) / (std::log(2.0) * std::log(2.0)), 1e-6);
}

TEST(BloomAllocationTest, WeightedOptimumBeatsClassicOnWeightedObjective) {
  // Deep-heavy occupancy with deep-heavy probe weights (the shape a walk
  // with a file-range pre-pass actually produces): classic Monkey fattens
  // the rarely-probed shallow filters too much.
  const auto entries = GeometricLevels(8, 2.0);
  const std::vector<double> weights = {0.05, 0.1, 0.2, 0.3,
                                       0.45, 0.6, 0.75, 1.0};
  const auto classic = SolveMonkeyAllocation(entries, 10.0);
  const auto weighted = SolveMonkeyAllocation(entries, 10.0, 40.0, weights);
  double classic_cost = 0, weighted_cost = 0;
  for (size_t i = 0; i < entries.size(); ++i) {
    classic_cost += weights[i] * BloomFpr(classic.bits_per_key[i]);
    weighted_cost += weights[i] * BloomFpr(weighted.bits_per_key[i]);
  }
  EXPECT_LT(weighted_cost, classic_cost * 0.95);
}

TEST(BloomAllocationTest, ZeroWeightLevelGetsNoFilterButKeepsBudgetEqual) {
  // A level the walk never reaches gets no filter, but its entries still
  // count toward the budget, which is respent on the probed levels — the
  // equal-total-memory comparison against uniform stays honest.
  const std::vector<double> entries = {1000.0, 1000.0, 1000.0};
  const auto alloc =
      SolveMonkeyAllocation(entries, 10.0, 40.0, {1.0, 0.0, 1.0});
  EXPECT_EQ(alloc.bits_per_key[1], 0.0);
  EXPECT_NEAR(alloc.bits_per_key[0], 15.0, 1e-9);
  EXPECT_NEAR(alloc.bits_per_key[2], 15.0, 1e-9);
  EXPECT_NEAR(alloc.total_bits, 10.0 * 3000.0, 1e-6);
}

// -- LaserOptions plumbing --

LaserOptions BaseOptions() {
  LaserOptions options;
  options.env = NewMemEnv().release();  // leaked: tests only
  options.path = "/alloc_test";
  options.schema = Schema::UniformInt32(8);
  options.num_levels = 8;
  options.size_ratio = 2;
  return options;
}

TEST(BloomAllocationTest, FinalizeDerivesUniformVector) {
  LaserOptions options = BaseOptions();
  ASSERT_TRUE(options.Finalize().ok());
  ASSERT_EQ(options.bloom_bits_per_level.size(), 8u);
  for (int level = 0; level < 8; ++level) {
    EXPECT_DOUBLE_EQ(options.bloom_bits_for_level(level), 10.0) << level;
  }
}

TEST(BloomAllocationTest, FinalizeDerivesMonkeyVectorAtSameBudget) {
  LaserOptions options = BaseOptions();
  options.bloom_allocation = BloomAllocation::kMonkey;
  ASSERT_TRUE(options.Finalize().ok());
  ASSERT_EQ(options.bloom_bits_per_level.size(), 8u);
  const auto entries = options.ExpectedEntriesPerLevel();
  double budget = 0, spent = 0, total_entries = 0;
  for (int level = 0; level < 8; ++level) {
    EXPECT_LE(options.bloom_bits_for_level(level),
              options.bloom_bits_for_level(level > 0 ? level - 1 : 0) + 1e-9);
    spent += entries[level] * options.bloom_bits_for_level(level);
    total_entries += entries[level];
  }
  budget = 10.0 * total_entries;
  EXPECT_NEAR(spent, budget, budget * 1e-6);
  EXPECT_LT(options.bloom_bits_for_level(7), 10.0);
  EXPECT_GT(options.bloom_bits_for_level(0), 10.0);
}

TEST(BloomAllocationTest, ExplicitTotalBudgetOverridesBitsPerKey) {
  LaserOptions options = BaseOptions();
  const auto entries = options.ExpectedEntriesPerLevel();
  double total_entries = 0;
  for (double e : entries) total_entries += e;
  options.bloom_total_bits_budget = 4.0 * total_entries;
  ASSERT_TRUE(options.Finalize().ok());
  for (int level = 0; level < 8; ++level) {
    EXPECT_NEAR(options.bloom_bits_for_level(level), 4.0, 1e-9) << level;
  }
}

TEST(BloomAllocationTest, LazyLevelingKnobIsRejectedUntilImplemented) {
  LaserOptions options = BaseOptions();
  options.lazy_leveling_last_level = true;
  EXPECT_TRUE(options.Finalize().IsInvalidArgument());
}

}  // namespace
}  // namespace laser
