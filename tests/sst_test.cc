// SST layer tests: block builder/reader delta encoding, bloom filters,
// builder/reader round trips, compression, block cache, properties.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "lsm/dbformat.h"
#include "sst/block.h"
#include "sst/block_builder.h"
#include "sst/block_cache.h"
#include "sst/bloom.h"
#include "sst/sst_builder.h"
#include "sst/sst_reader.h"
#include "util/coding.h"
#include "util/random.h"

namespace laser {
namespace {

std::string IKey(uint64_t user, SequenceNumber seq,
                 ValueType type = kTypeFullRow) {
  return MakeInternalKey(EncodeKey64(user), seq, type);
}

// ----------------------------------------------------------------- Block --

TEST(BlockTest, BuildAndScan) {
  BlockBuilder builder(4);
  std::vector<std::pair<std::string, std::string>> entries;
  for (uint64_t i = 0; i < 100; ++i) {
    entries.emplace_back(IKey(i * 3, 1), "value" + std::to_string(i));
  }
  for (const auto& [k, v] : entries) builder.Add(k, v);
  Block block(builder.Finish().ToString());

  auto iter = block.NewIterator();
  iter->SeekToFirst();
  for (const auto& [k, v] : entries) {
    ASSERT_TRUE(iter->Valid());
    EXPECT_EQ(iter->key().ToString(), k);
    EXPECT_EQ(iter->value().ToString(), v);
    iter->Next();
  }
  EXPECT_FALSE(iter->Valid());
}

TEST(BlockTest, SeekFindsLowerBound) {
  BlockBuilder builder(16);
  for (uint64_t i = 10; i <= 100; i += 10) {
    builder.Add(IKey(i, 5), std::to_string(i));
  }
  Block block(builder.Finish().ToString());
  auto iter = block.NewIterator();

  iter->Seek(IKey(35, kMaxSequenceNumber));
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->value().ToString(), "40");

  // Seek with a high sequence number lands on the entry itself.
  iter->Seek(MakeLookupKey(EncodeKey64(40), kMaxSequenceNumber));
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->value().ToString(), "40");

  // Seeking beyond the end invalidates.
  iter->Seek(IKey(1000, kMaxSequenceNumber));
  EXPECT_FALSE(iter->Valid());
}

TEST(BlockTest, RestartIntervalOneDisablesSharing) {
  // With interval 1 every key is stored in full; the block must still work.
  BlockBuilder builder(1);
  for (uint64_t i = 0; i < 50; ++i) builder.Add(IKey(i, 1), "v");
  Block block(builder.Finish().ToString());
  auto iter = block.NewIterator();
  iter->Seek(IKey(25, kMaxSequenceNumber));
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(ExtractUserKey(iter->key()).ToString(), EncodeKey64(25));
}

TEST(BlockTest, DeltaEncodingShrinksSharedPrefixKeys) {
  // Sequential big-endian keys share long prefixes: delta encoding should
  // clearly beat interval 1.
  BlockBuilder delta(16);
  BlockBuilder plain(1);
  for (uint64_t i = 0; i < 500; ++i) {
    delta.Add(IKey(1000000 + i, 1), "x");
    plain.Add(IKey(1000000 + i, 1), "x");
  }
  EXPECT_LT(delta.Finish().size(), plain.Finish().size() * 8 / 10);
}

TEST(BlockTest, EmptyBlockYieldsInvalidIterator) {
  BlockBuilder builder(16);
  Block block(builder.Finish().ToString());
  auto iter = block.NewIterator();
  iter->SeekToFirst();
  EXPECT_FALSE(iter->Valid());
}

TEST(BlockTest, MalformedBlockReportsCorruption) {
  Block block(std::string("ab"));  // too short for restart trailer
  auto iter = block.NewIterator();
  iter->SeekToFirst();
  EXPECT_FALSE(iter->Valid());
  EXPECT_FALSE(iter->status().ok());
}

// ----------------------------------------------------------------- Bloom --

TEST(BloomTest, NoFalseNegatives) {
  BloomFilterBuilder builder(10);
  for (uint64_t i = 0; i < 2000; ++i) {
    builder.AddKey(EncodeKey64(i * 7));
  }
  const std::string data = builder.Finish();
  BloomFilterReader reader((Slice(data)));
  for (uint64_t i = 0; i < 2000; ++i) {
    EXPECT_TRUE(reader.KeyMayMatch(EncodeKey64(i * 7))) << i;
  }
}

TEST(BloomTest, FalsePositiveRateNearOnePercent) {
  BloomFilterBuilder builder(10);
  for (uint64_t i = 0; i < 10000; ++i) builder.AddKey(EncodeKey64(i));
  const std::string data = builder.Finish();
  BloomFilterReader reader((Slice(data)));
  int false_positives = 0;
  const int probes = 10000;
  for (int i = 0; i < probes; ++i) {
    if (reader.KeyMayMatch(EncodeKey64(1000000 + i))) ++false_positives;
  }
  const double fpr = static_cast<double>(false_positives) / probes;
  EXPECT_LT(fpr, 0.025) << "fpr=" << fpr;  // ~1% expected at 10 bits/key
}

TEST(BloomTest, EmptyFilterBehavesSafely) {
  BloomFilterBuilder builder(10);
  const std::string data = builder.Finish();
  BloomFilterReader reader((Slice(data)));
  EXPECT_FALSE(reader.KeyMayMatch(EncodeKey64(1)));
}

// ------------------------------------------------------------ SST files --

class SstTest : public ::testing::TestWithParam<CompressionType> {
 protected:
  void SetUp() override { env_ = NewMemEnv(); }

  /// Builds an SST of `n` sequential keys; returns the reader.
  std::unique_ptr<SstReader> BuildAndOpen(int n, BlockCache* cache = nullptr) {
    std::unique_ptr<WritableFile> file;
    EXPECT_TRUE(env_->NewWritableFile("/test.sst", &file).ok());
    SstBuildOptions options;
    options.block_size = 512;  // force many blocks
    options.compression = GetParam();
    SstBuilder builder(options, std::move(file));
    for (int i = 0; i < n; ++i) {
      builder.Add(IKey(i * 2, i + 1), "value-" + std::to_string(i));
    }
    EXPECT_TRUE(builder.Finish().ok());
    std::unique_ptr<SstReader> reader;
    EXPECT_TRUE(
        SstReader::Open(env_.get(), "/test.sst", 1, cache, &stats_, &reader).ok());
    return reader;
  }

  std::unique_ptr<Env> env_;
  Stats stats_;
};

TEST_P(SstTest, FullScanSeesEveryEntry) {
  auto reader = BuildAndOpen(1000);
  auto iter = reader->NewIterator();
  int count = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    EXPECT_EQ(ExtractUserKey(iter->key()).ToString(),
              EncodeKey64(count * 2));
    EXPECT_EQ(iter->value().ToString(), "value-" + std::to_string(count));
    ++count;
  }
  EXPECT_TRUE(iter->status().ok());
  EXPECT_EQ(count, 1000);
}

TEST_P(SstTest, PointGetFindsExistingKeys) {
  auto reader = BuildAndOpen(1000);
  for (int i : {0, 1, 499, 998, 999}) {
    std::vector<KeyVersion> versions;
    ASSERT_TRUE(
        reader->Get(EncodeKey64(i * 2), kMaxSequenceNumber, &versions))
        << i;
    ASSERT_EQ(versions.size(), 1u);
    EXPECT_EQ(versions[0].value, "value-" + std::to_string(i));
    EXPECT_EQ(versions[0].sequence, static_cast<SequenceNumber>(i + 1));
  }
}

TEST_P(SstTest, PointGetMissesAbsentKeys) {
  auto reader = BuildAndOpen(1000);
  for (int i : {1, 3, 777}) {  // odd keys were never inserted
    std::vector<KeyVersion> versions;
    EXPECT_FALSE(reader->Get(EncodeKey64(i), kMaxSequenceNumber, &versions));
  }
}

TEST_P(SstTest, SeekPositionsAtLowerBound) {
  auto reader = BuildAndOpen(100);
  auto iter = reader->NewIterator();
  iter->Seek(MakeLookupKey(EncodeKey64(51), kMaxSequenceNumber));
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(ExtractUserKey(iter->key()).ToString(), EncodeKey64(52));
}

TEST_P(SstTest, PropertiesRecorded) {
  auto reader = BuildAndOpen(500);
  EXPECT_EQ(reader->properties().num_entries, 500u);
  EXPECT_EQ(reader->properties().smallest_seq, 1u);
  EXPECT_EQ(reader->properties().largest_seq, 500u);
}

TEST_P(SstTest, MultipleVersionsOfKeyReturnedNewestFirst) {
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env_->NewWritableFile("/test.sst", &file).ok());
  SstBuilder builder(SstBuildOptions{.compression = GetParam()},
                     std::move(file));
  // Internal key order: same user key, descending seq.
  builder.Add(IKey(5, 30, kTypePartialRow), "p30");
  builder.Add(IKey(5, 20, kTypePartialRow), "p20");
  builder.Add(IKey(5, 10, kTypeFullRow), "f10");
  builder.Add(IKey(5, 5, kTypeFullRow), "f5");
  ASSERT_TRUE(builder.Finish().ok());
  std::unique_ptr<SstReader> reader;
  ASSERT_TRUE(
      SstReader::Open(env_.get(), "/test.sst", 1, nullptr, nullptr, &reader).ok());

  std::vector<KeyVersion> versions;
  ASSERT_TRUE(reader->Get(EncodeKey64(5), kMaxSequenceNumber, &versions));
  ASSERT_EQ(versions.size(), 3u);  // stops at the first full row
  EXPECT_EQ(versions[0].value, "p30");
  EXPECT_EQ(versions[1].value, "p20");
  EXPECT_EQ(versions[2].value, "f10");

  // Snapshot at 15: the partials above are invisible.
  versions.clear();
  ASSERT_TRUE(reader->Get(EncodeKey64(5), 15, &versions));
  ASSERT_EQ(versions.size(), 1u);
  EXPECT_EQ(versions[0].value, "f10");
}

TEST_P(SstTest, BlockCacheServesRepeatReads) {
  BlockCache cache(1 << 20);
  auto reader = BuildAndOpen(1000, &cache);
  std::vector<KeyVersion> versions;
  reader->Get(EncodeKey64(500), kMaxSequenceNumber, &versions);
  const uint64_t misses_before = stats_.block_cache_misses.load();
  const uint64_t reads_before = stats_.data_block_reads.load();
  versions.clear();
  reader->Get(EncodeKey64(500), kMaxSequenceNumber, &versions);
  EXPECT_EQ(stats_.block_cache_misses.load(), misses_before);
  EXPECT_EQ(stats_.data_block_reads.load(), reads_before);  // served by cache
  EXPECT_GT(stats_.block_cache_hits.load(), 0u);
}

TEST_P(SstTest, BloomSkipsAbsentKeyWithoutBlockRead) {
  auto reader = BuildAndOpen(1000);
  const uint64_t reads_before = stats_.data_block_reads.load();
  std::vector<KeyVersion> versions;
  // Probe many absent keys: nearly all should be bloom-rejected.
  int block_reads = 0;
  for (int i = 0; i < 200; ++i) {
    reader->Get(EncodeKey64(10000000 + i), kMaxSequenceNumber, &versions);
  }
  block_reads = static_cast<int>(stats_.data_block_reads.load() - reads_before);
  EXPECT_LT(block_reads, 20);  // ~1% fpr
  EXPECT_GT(stats_.bloom_negatives.load(), 180u);
}

TEST_P(SstTest, CorruptedBlockDetected) {
  BuildAndOpen(1000);
  std::string contents;
  ASSERT_TRUE(env_->ReadFileToString("/test.sst", &contents).ok());
  contents[100] ^= 0xff;  // corrupt the first data block
  ASSERT_TRUE(env_->WriteStringToFile(Slice(contents), "/test.sst").ok());
  std::unique_ptr<SstReader> reader;
  ASSERT_TRUE(
      SstReader::Open(env_.get(), "/test.sst", 2, nullptr, nullptr, &reader).ok());
  auto iter = reader->NewIterator();
  iter->SeekToFirst();
  // Either invalid immediately or an error status during the scan.
  while (iter->Valid()) iter->Next();
  EXPECT_FALSE(iter->status().ok());
}

INSTANTIATE_TEST_SUITE_P(Compression, SstTest,
                         ::testing::Values(CompressionType::kNone,
                                           CompressionType::kLightLZ),
                         [](const auto& info) {
                           return info.param == CompressionType::kNone
                                      ? "NoCompression"
                                      : "LightLZ";
                         });

TEST(SstSizeTest, CompressionShrinksFile) {
  auto env = NewMemEnv();
  uint64_t sizes[2];
  int idx = 0;
  for (CompressionType type :
       {CompressionType::kNone, CompressionType::kLightLZ}) {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env->NewWritableFile("/z.sst", &file).ok());
    SstBuildOptions options;
    options.compression = type;
    SstBuilder builder(options, std::move(file));
    for (uint64_t i = 0; i < 5000; ++i) {
      builder.Add(IKey(i, i + 1), std::string(40, static_cast<char>('a' + i % 3)));
    }
    ASSERT_TRUE(builder.Finish().ok());
    sizes[idx++] = builder.FileSize();
  }
  EXPECT_LT(sizes[1], sizes[0] * 7 / 10);
}

// ----------------------------------------------------------- BlockCache --

TEST(BlockCacheTest, InsertLookupErase) {
  BlockCache cache(1 << 20);
  auto block = std::make_shared<Block>(std::string(100, 'x'));
  cache.Insert(1, 0, block);
  EXPECT_EQ(cache.Lookup(1, 0), block);
  EXPECT_EQ(cache.Lookup(1, 1), nullptr);
  EXPECT_EQ(cache.Lookup(2, 0), nullptr);
  cache.EraseFile(1);
  EXPECT_EQ(cache.Lookup(1, 0), nullptr);
}

TEST(BlockCacheTest, EvictsLeastRecentlyUsed) {
  BlockCache cache(1000);
  auto make_block = [] { return std::make_shared<Block>(std::string(300, 'x')); };
  cache.Insert(1, 0, make_block());
  cache.Insert(1, 1, make_block());
  ASSERT_NE(cache.Lookup(1, 0), nullptr);  // touch 0: now 1 is LRU
  cache.Insert(1, 2, make_block());        // evicts 1
  EXPECT_NE(cache.Lookup(1, 0), nullptr);
  EXPECT_EQ(cache.Lookup(1, 1), nullptr);
  EXPECT_NE(cache.Lookup(1, 2), nullptr);
}

TEST(BlockCacheTest, ChargeTracksUsage) {
  BlockCache cache(1 << 20);
  EXPECT_EQ(cache.charge(), 0u);
  cache.Insert(1, 0, std::make_shared<Block>(std::string(1000, 'x')));
  EXPECT_GT(cache.charge(), 1000u);
  cache.EraseFile(1);
  EXPECT_EQ(cache.charge(), 0u);
}

}  // namespace
}  // namespace laser
