// SST layer tests: block builder/reader delta encoding, bloom filters,
// builder/reader round trips, compression, block cache, properties.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <optional>
#include <string>

#include "laser/scan_pushdown.h"
#include "lsm/dbformat.h"
#include "lsm/file_meta.h"
#include "lsm/run_iterator.h"
#include "sst/block.h"
#include "sst/block_builder.h"
#include "sst/block_cache.h"
#include "sst/bloom.h"
#include "sst/sst_builder.h"
#include "sst/sst_reader.h"
#include "util/coding.h"
#include "util/random.h"

namespace laser {
namespace {

std::string IKey(uint64_t user, SequenceNumber seq,
                 ValueType type = kTypeFullRow) {
  return MakeInternalKey(EncodeKey64(user), seq, type);
}

// ----------------------------------------------------------------- Block --

TEST(BlockTest, BuildAndScan) {
  BlockBuilder builder(4);
  std::vector<std::pair<std::string, std::string>> entries;
  for (uint64_t i = 0; i < 100; ++i) {
    entries.emplace_back(IKey(i * 3, 1), "value" + std::to_string(i));
  }
  for (const auto& [k, v] : entries) builder.Add(k, v);
  Block block(builder.Finish().ToString());

  auto iter = block.NewIterator();
  iter->SeekToFirst();
  for (const auto& [k, v] : entries) {
    ASSERT_TRUE(iter->Valid());
    EXPECT_EQ(iter->key().ToString(), k);
    EXPECT_EQ(iter->value().ToString(), v);
    iter->Next();
  }
  EXPECT_FALSE(iter->Valid());
}

TEST(BlockTest, SeekFindsLowerBound) {
  BlockBuilder builder(16);
  for (uint64_t i = 10; i <= 100; i += 10) {
    builder.Add(IKey(i, 5), std::to_string(i));
  }
  Block block(builder.Finish().ToString());
  auto iter = block.NewIterator();

  iter->Seek(IKey(35, kMaxSequenceNumber));
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->value().ToString(), "40");

  // Seek with a high sequence number lands on the entry itself.
  iter->Seek(MakeLookupKey(EncodeKey64(40), kMaxSequenceNumber));
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->value().ToString(), "40");

  // Seeking beyond the end invalidates.
  iter->Seek(IKey(1000, kMaxSequenceNumber));
  EXPECT_FALSE(iter->Valid());
}

TEST(BlockTest, RestartIntervalOneDisablesSharing) {
  // With interval 1 every key is stored in full; the block must still work.
  BlockBuilder builder(1);
  for (uint64_t i = 0; i < 50; ++i) builder.Add(IKey(i, 1), "v");
  Block block(builder.Finish().ToString());
  auto iter = block.NewIterator();
  iter->Seek(IKey(25, kMaxSequenceNumber));
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(ExtractUserKey(iter->key()).ToString(), EncodeKey64(25));
}

TEST(BlockTest, DeltaEncodingShrinksSharedPrefixKeys) {
  // Sequential big-endian keys share long prefixes: delta encoding should
  // clearly beat interval 1.
  BlockBuilder delta(16);
  BlockBuilder plain(1);
  for (uint64_t i = 0; i < 500; ++i) {
    delta.Add(IKey(1000000 + i, 1), "x");
    plain.Add(IKey(1000000 + i, 1), "x");
  }
  EXPECT_LT(delta.Finish().size(), plain.Finish().size() * 8 / 10);
}

TEST(BlockTest, EmptyBlockYieldsInvalidIterator) {
  BlockBuilder builder(16);
  Block block(builder.Finish().ToString());
  auto iter = block.NewIterator();
  iter->SeekToFirst();
  EXPECT_FALSE(iter->Valid());
}

TEST(BlockTest, MalformedBlockReportsCorruption) {
  Block block(std::string("ab"));  // too short for restart trailer
  auto iter = block.NewIterator();
  iter->SeekToFirst();
  EXPECT_FALSE(iter->Valid());
  EXPECT_FALSE(iter->status().ok());
}

// ----------------------------------------------------------------- Bloom --

TEST(BloomTest, NoFalseNegatives) {
  BloomFilterBuilder builder(10);
  for (uint64_t i = 0; i < 2000; ++i) {
    builder.AddKey(EncodeKey64(i * 7));
  }
  const std::string data = builder.Finish();
  BloomFilterReader reader((Slice(data)));
  for (uint64_t i = 0; i < 2000; ++i) {
    EXPECT_TRUE(reader.KeyMayMatch(EncodeKey64(i * 7))) << i;
  }
}

TEST(BloomTest, FalsePositiveRateNearOnePercent) {
  BloomFilterBuilder builder(10);
  for (uint64_t i = 0; i < 10000; ++i) builder.AddKey(EncodeKey64(i));
  const std::string data = builder.Finish();
  BloomFilterReader reader((Slice(data)));
  int false_positives = 0;
  const int probes = 10000;
  for (int i = 0; i < probes; ++i) {
    if (reader.KeyMayMatch(EncodeKey64(1000000 + i))) ++false_positives;
  }
  const double fpr = static_cast<double>(false_positives) / probes;
  EXPECT_LT(fpr, 0.025) << "fpr=" << fpr;  // ~1% expected at 10 bits/key
}

TEST(BloomTest, EmptyFilterBehavesSafely) {
  BloomFilterBuilder builder(10);
  const std::string data = builder.Finish();
  BloomFilterReader reader((Slice(data)));
  EXPECT_FALSE(reader.KeyMayMatch(EncodeKey64(1)));
}

// Tail compaction outputs produce 0/1/2-key files; after the 64-bit floor
// their real density is 32-64 bits/key, and the probe count must come from
// that density, not the nominal budget, or the tiny filter is degenerate.
TEST(BloomTest, TinyFiltersKeepNoFalseNegativesAndRejectWell) {
  for (int keys = 0; keys <= 2; ++keys) {
    BloomFilterBuilder builder(10);
    for (int i = 0; i < keys; ++i) builder.AddKey(EncodeKey64(i * 977 + 5));
    const std::string data = builder.Finish();
    ASSERT_GE(data.size(), 9u) << keys;  // 64-bit floor + probe byte
    const int probes = static_cast<unsigned char>(data.back());
    // 64 bits over <= 2 keys supports a dense probe schedule; the nominal
    // k=7 of "10 bits/key" would waste the padding.
    EXPECT_GE(probes, keys == 0 ? 1 : 7) << keys;
    EXPECT_LE(probes, 30) << keys;

    BloomFilterReader reader((Slice(data)));
    for (int i = 0; i < keys; ++i) {
      EXPECT_TRUE(reader.KeyMayMatch(EncodeKey64(i * 977 + 5))) << keys;
    }
    int false_positives = 0;
    // Spread probes (see EmpiricalFprTracksTheoryAcrossBitsPerKey): what the
    // floor must guarantee is rejection of generic absent keys, not of the
    // clustered images the avalanche-free hash gives sequential ones.
    for (uint64_t i = 0; i < 2000; ++i) {
      const uint64_t probe = i * 0x9e3779b97f4a7c15ull + 0x55ull;
      if (reader.KeyMayMatch(EncodeKey64(probe))) ++false_positives;
    }
    // At >= 32 effective bits/key a 64-slot table rejects ~99% even though
    // the arithmetic-progression probe chains keep it far from theory.
    EXPECT_LT(false_positives, keys == 0 ? 1 : 40) << keys;
  }
}

TEST(BloomTest, ZeroBitsBuildsNoFilter) {
  BloomFilterBuilder builder(0.0);
  for (uint64_t i = 0; i < 100; ++i) builder.AddKey(EncodeKey64(i));
  EXPECT_TRUE(builder.Finish().empty());
  // And the reader treats the missing filter conservatively.
  BloomFilterReader reader((Slice()));
  EXPECT_TRUE(reader.KeyMayMatch(EncodeKey64(1)));
}

// Measured FPR within 2x of the theoretical 0.6185^bits for fractional and
// integer allocations — the solver's closed form assumes this curve holds.
TEST(BloomTest, EmpiricalFprTracksTheoryAcrossBitsPerKey) {
  const uint64_t kKeys = 10000;
  const uint64_t kProbes = 120000;
  // Golden-ratio stride spreads keys over the 64-bit space. Sequential keys
  // cluster under the avalanche-free seed hash (measured FPR lands BELOW
  // theory at some table sizes), which would make this comparison measure
  // the hash, not the filter.
  const uint64_t kStride = 0x9e3779b97f4a7c15ull;
  for (const double bits : {4.0, 6.5, 10.0, 14.0}) {
    BloomFilterBuilder builder(bits);
    for (uint64_t i = 0; i < kKeys; ++i) {
      builder.AddKey(EncodeKey64(i * kStride));
    }
    const std::string data = builder.Finish();
    BloomFilterReader reader((Slice(data)));
    int false_positives = 0;
    for (uint64_t i = 0; i < kProbes; ++i) {
      if (reader.KeyMayMatch(EncodeKey64(i * kStride + 0x1234567ull))) {
        ++false_positives;
      }
    }
    const double fpr = static_cast<double>(false_positives) / kProbes;
    const double theory = std::exp(-bits * 0.4804530139182014);  // 0.6185^bits
    EXPECT_LT(fpr, theory * 2.0) << "bits=" << bits << " fpr=" << fpr;
    EXPECT_GT(fpr, theory / 2.0) << "bits=" << bits << " fpr=" << fpr;
  }
}

// ------------------------------------------------------------ SST files --

class SstTest : public ::testing::TestWithParam<CompressionType> {
 protected:
  void SetUp() override { env_ = NewMemEnv(); }

  /// Builds an SST of `n` sequential keys; returns the reader.
  std::unique_ptr<SstReader> BuildAndOpen(int n, BlockCache* cache = nullptr) {
    std::unique_ptr<WritableFile> file;
    EXPECT_TRUE(env_->NewWritableFile("/test.sst", &file).ok());
    SstBuildOptions options;
    options.block_size = 512;  // force many blocks
    options.compression = GetParam();
    SstBuilder builder(options, std::move(file));
    for (int i = 0; i < n; ++i) {
      builder.Add(IKey(i * 2, i + 1), "value-" + std::to_string(i));
    }
    EXPECT_TRUE(builder.Finish().ok());
    std::unique_ptr<SstReader> reader;
    EXPECT_TRUE(
        SstReader::Open(env_.get(), "/test.sst", 1, cache, &stats_, &reader).ok());
    return reader;
  }

  std::unique_ptr<Env> env_;
  Stats stats_;
};

TEST_P(SstTest, FullScanSeesEveryEntry) {
  auto reader = BuildAndOpen(1000);
  auto iter = reader->NewIterator();
  int count = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    EXPECT_EQ(ExtractUserKey(iter->key()).ToString(),
              EncodeKey64(count * 2));
    EXPECT_EQ(iter->value().ToString(), "value-" + std::to_string(count));
    ++count;
  }
  EXPECT_TRUE(iter->status().ok());
  EXPECT_EQ(count, 1000);
}

TEST_P(SstTest, PointGetFindsExistingKeys) {
  auto reader = BuildAndOpen(1000);
  for (int i : {0, 1, 499, 998, 999}) {
    std::vector<KeyVersion> versions;
    ASSERT_TRUE(
        reader->Get(EncodeKey64(i * 2), kMaxSequenceNumber, &versions))
        << i;
    ASSERT_EQ(versions.size(), 1u);
    EXPECT_EQ(versions[0].value, "value-" + std::to_string(i));
    EXPECT_EQ(versions[0].sequence, static_cast<SequenceNumber>(i + 1));
  }
}

TEST_P(SstTest, PointGetMissesAbsentKeys) {
  auto reader = BuildAndOpen(1000);
  for (int i : {1, 3, 777}) {  // odd keys were never inserted
    std::vector<KeyVersion> versions;
    EXPECT_FALSE(reader->Get(EncodeKey64(i), kMaxSequenceNumber, &versions));
  }
}

TEST_P(SstTest, SeekPositionsAtLowerBound) {
  auto reader = BuildAndOpen(100);
  auto iter = reader->NewIterator();
  iter->Seek(MakeLookupKey(EncodeKey64(51), kMaxSequenceNumber));
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(ExtractUserKey(iter->key()).ToString(), EncodeKey64(52));
}

TEST_P(SstTest, PropertiesRecorded) {
  auto reader = BuildAndOpen(500);
  EXPECT_EQ(reader->properties().num_entries, 500u);
  EXPECT_EQ(reader->properties().smallest_seq, 1u);
  EXPECT_EQ(reader->properties().largest_seq, 500u);
}

TEST_P(SstTest, MultipleVersionsOfKeyReturnedNewestFirst) {
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env_->NewWritableFile("/test.sst", &file).ok());
  SstBuildOptions multi_options;
  multi_options.compression = GetParam();
  SstBuilder builder(multi_options, std::move(file));
  // Internal key order: same user key, descending seq.
  builder.Add(IKey(5, 30, kTypePartialRow), "p30");
  builder.Add(IKey(5, 20, kTypePartialRow), "p20");
  builder.Add(IKey(5, 10, kTypeFullRow), "f10");
  builder.Add(IKey(5, 5, kTypeFullRow), "f5");
  ASSERT_TRUE(builder.Finish().ok());
  std::unique_ptr<SstReader> reader;
  ASSERT_TRUE(
      SstReader::Open(env_.get(), "/test.sst", 1, nullptr, nullptr, &reader).ok());

  std::vector<KeyVersion> versions;
  ASSERT_TRUE(reader->Get(EncodeKey64(5), kMaxSequenceNumber, &versions));
  ASSERT_EQ(versions.size(), 3u);  // stops at the first full row
  EXPECT_EQ(versions[0].value, "p30");
  EXPECT_EQ(versions[1].value, "p20");
  EXPECT_EQ(versions[2].value, "f10");

  // Snapshot at 15: the partials above are invisible.
  versions.clear();
  ASSERT_TRUE(reader->Get(EncodeKey64(5), 15, &versions));
  ASSERT_EQ(versions.size(), 1u);
  EXPECT_EQ(versions[0].value, "f10");
}

TEST_P(SstTest, BlockCacheServesRepeatReads) {
  BlockCache cache(1 << 20);
  auto reader = BuildAndOpen(1000, &cache);
  std::vector<KeyVersion> versions;
  reader->Get(EncodeKey64(500), kMaxSequenceNumber, &versions);
  const uint64_t misses_before = stats_.block_cache_misses.load();
  const uint64_t reads_before = stats_.data_block_reads.load();
  versions.clear();
  reader->Get(EncodeKey64(500), kMaxSequenceNumber, &versions);
  EXPECT_EQ(stats_.block_cache_misses.load(), misses_before);
  EXPECT_EQ(stats_.data_block_reads.load(), reads_before);  // served by cache
  EXPECT_GT(stats_.block_cache_hits.load(), 0u);
}

TEST_P(SstTest, BloomSkipsAbsentKeyWithoutBlockRead) {
  auto reader = BuildAndOpen(1000);
  const uint64_t reads_before = stats_.data_block_reads.load();
  std::vector<KeyVersion> versions;
  // Probe many absent keys: nearly all should be bloom-rejected.
  int block_reads = 0;
  for (int i = 0; i < 200; ++i) {
    reader->Get(EncodeKey64(10000000 + i), kMaxSequenceNumber, &versions);
  }
  block_reads = static_cast<int>(stats_.data_block_reads.load() - reads_before);
  EXPECT_LT(block_reads, 20);  // ~1% fpr
  EXPECT_GT(stats_.bloom_negatives.load(), 180u);
}

TEST_P(SstTest, ZeroFilterBitsOmitsFilterBlock) {
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env_->NewWritableFile("/test.sst", &file).ok());
  SstBuildOptions options;
  options.block_size = 512;
  options.compression = GetParam();
  options.bloom_bits_per_key = 0;  // past the Monkey crossover: no filter
  SstBuilder builder(options, std::move(file));
  for (int i = 0; i < 500; ++i) {
    builder.Add(IKey(i * 2, i + 1), "value-" + std::to_string(i));
  }
  ASSERT_TRUE(builder.Finish().ok());
  EXPECT_EQ(builder.properties().filter_bytes, 0u);

  std::unique_ptr<SstReader> reader;
  ASSERT_TRUE(
      SstReader::Open(env_.get(), "/test.sst", 1, nullptr, &stats_, &reader).ok());
  EXPECT_EQ(reader->filter_bytes(), 0u);
  EXPECT_EQ(reader->properties().filter_bytes, 0u);

  // No filter: absent keys pass the (absent) filter and probe blocks...
  EXPECT_TRUE(reader->KeyMayMatch(EncodeKey64(999999)));
  std::vector<KeyVersion> versions;
  EXPECT_FALSE(reader->Get(EncodeKey64(999999), kMaxSequenceNumber, &versions));
  // ...and are not counted as filter checks.
  EXPECT_EQ(stats_.bloom_checks.load(), 0u);

  // Existing keys still resolve (both Get overloads).
  ASSERT_TRUE(reader->Get(EncodeKey64(10), kMaxSequenceNumber, &versions));
  versions.clear();
  FilterOutcome outcome;
  ASSERT_TRUE(reader->Get(EncodeKey64(10), BloomKeyHash(EncodeKey64(10)),
                          kMaxSequenceNumber, &versions, &outcome));
  EXPECT_EQ(outcome, FilterOutcome::kNoFilter);
}

TEST_P(SstTest, HashGetOverloadMatchesSliceGet) {
  auto reader = BuildAndOpen(1000);
  EXPECT_GT(reader->filter_bytes(), 0u);
  EXPECT_EQ(reader->properties().filter_bytes, reader->filter_bytes());
  for (int i : {0, 2, 998, 1001, 777}) {
    const std::string key = EncodeKey64(i);
    std::vector<KeyVersion> a, b;
    FilterOutcome outcome;
    const bool via_slice = reader->Get(key, kMaxSequenceNumber, &a);
    const bool via_hash =
        reader->Get(key, BloomKeyHash(key), kMaxSequenceNumber, &b, &outcome);
    EXPECT_EQ(via_slice, via_hash) << i;
    EXPECT_EQ(a.size(), b.size()) << i;
    if (via_hash) EXPECT_EQ(outcome, FilterOutcome::kPass) << i;
  }
  // The hash overload must not bump the reader's own stats: the caller
  // attributes probes per level.
  const uint64_t checks_before = stats_.bloom_checks.load();
  std::vector<KeyVersion> versions;
  FilterOutcome outcome;
  const std::string absent = EncodeKey64(123456789);
  reader->Get(absent, BloomKeyHash(absent), kMaxSequenceNumber, &versions,
              &outcome);
  EXPECT_EQ(stats_.bloom_checks.load(), checks_before);
  // And the prefetch hint is safe to issue for any hash.
  reader->PrefetchFilterProbes(BloomKeyHash(absent));
}

TEST_P(SstTest, CorruptedBlockDetected) {
  BuildAndOpen(1000);
  std::string contents;
  ASSERT_TRUE(env_->ReadFileToString("/test.sst", &contents).ok());
  contents[100] ^= 0xff;  // corrupt the first data block
  ASSERT_TRUE(env_->WriteStringToFile(Slice(contents), "/test.sst").ok());
  std::unique_ptr<SstReader> reader;
  ASSERT_TRUE(
      SstReader::Open(env_.get(), "/test.sst", 2, nullptr, nullptr, &reader).ok());
  auto iter = reader->NewIterator();
  iter->SeekToFirst();
  // Either invalid immediately or an error status during the scan.
  while (iter->Valid()) iter->Next();
  EXPECT_FALSE(iter->status().ok());
}

INSTANTIATE_TEST_SUITE_P(Compression, SstTest,
                         ::testing::Values(CompressionType::kNone,
                                           CompressionType::kLightLZ),
                         [](const auto& info) {
                           return info.param == CompressionType::kNone
                                      ? "NoCompression"
                                      : "LightLZ";
                         });

TEST(SstSizeTest, CompressionShrinksFile) {
  auto env = NewMemEnv();
  uint64_t sizes[2];
  int idx = 0;
  for (CompressionType type :
       {CompressionType::kNone, CompressionType::kLightLZ}) {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env->NewWritableFile("/z.sst", &file).ok());
    SstBuildOptions options;
    options.compression = type;
    SstBuilder builder(options, std::move(file));
    for (uint64_t i = 0; i < 5000; ++i) {
      builder.Add(IKey(i, i + 1), std::string(40, static_cast<char>('a' + i % 3)));
    }
    ASSERT_TRUE(builder.Finish().ok());
    sizes[idx++] = builder.FileSize();
  }
  EXPECT_LT(sizes[1], sizes[0] * 7 / 10);
}

// ------------------------------------------------------------ Zone maps --

/// One CG row payload over the two-column layout {1, 2} (both width 4):
/// presence bitmap byte, then the present columns' fixed32 values.
std::string ZoneRow(std::optional<uint32_t> c1, std::optional<uint32_t> c2) {
  std::string out;
  uint8_t bitmap = 0;
  if (c1.has_value()) bitmap |= 1;
  if (c2.has_value()) bitmap |= 2;
  out.push_back(static_cast<char>(bitmap));
  if (c1.has_value()) PutFixed32(&out, *c1);
  if (c2.has_value()) PutFixed32(&out, *c2);
  return out;
}

class ZoneMapSstTest : public ::testing::Test {
 protected:
  void SetUp() override { env_ = NewMemEnv(); }

  /// Keys 0..n-1, column 1 clustered (value = key * 10), column 2 constant
  /// 500 or always-null. Small blocks force many zone entries.
  void Build(int n, bool null_c2 = false) {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env_->NewWritableFile("/zone.sst", &file).ok());
    SstBuildOptions options;
    options.block_size = 256;
    options.zone_columns = {{1, 4}, {2, 4}};
    SstBuilder builder(options, std::move(file));
    for (int i = 0; i < n; ++i) {
      builder.Add(IKey(i, i + 1),
                  ZoneRow(static_cast<uint32_t>(i) * 10,
                          null_c2 ? std::nullopt
                                  : std::optional<uint32_t>(500)));
    }
    ASSERT_TRUE(builder.Finish().ok());
    Open();
  }

  void Open() {
    reader_.reset();
    ASSERT_TRUE(SstReader::Open(env_.get(), "/zone.sst", 1, nullptr, &stats_,
                                &reader_)
                    .ok());
  }

  /// Full forward scan through `filter`; returns rows seen.
  int CountRows(BlockReadFilter* filter) {
    auto iter = reader_->NewIterator(filter);
    int count = 0;
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) ++count;
    EXPECT_TRUE(iter->status().ok());
    return count;
  }

  std::unique_ptr<Env> env_;
  Stats stats_;
  std::unique_ptr<SstReader> reader_;
};

TEST_F(ZoneMapSstTest, BuilderWritesPerBlockAndFileZones) {
  Build(400);
  const ZoneMaps* zones = reader_->zone_maps();
  ASSERT_NE(zones, nullptr);
  ASSERT_GT(zones->blocks.size(), 3u);
  for (const ZoneMapEntry& entry : zones->blocks) {
    EXPECT_TRUE(entry.self_contained);  // unique keys never straddle
    ASSERT_EQ(entry.cols.size(), 2u);
    EXPECT_EQ(entry.cols[0].column, 1u);
    ASSERT_TRUE(entry.cols[0].has_values);
    // Column 1 clusters with the key, so its bounds are exactly the key
    // bounds scaled.
    EXPECT_EQ(entry.cols[0].min, entry.first_user_key * 10);
    EXPECT_EQ(entry.cols[0].max, entry.last_user_key * 10);
    ASSERT_TRUE(entry.cols[1].has_values);
    EXPECT_EQ(entry.cols[1].min, 500u);
    EXPECT_EQ(entry.cols[1].max, 500u);
  }
  const ZoneMapEntry* file_zone = reader_->file_zone();
  ASSERT_NE(file_zone, nullptr);
  EXPECT_EQ(file_zone->first_user_key, 0u);
  EXPECT_EQ(file_zone->last_user_key, 399u);
  ASSERT_EQ(file_zone->cols.size(), 2u);
  EXPECT_EQ(file_zone->cols[0].min, 0u);
  EXPECT_EQ(file_zone->cols[0].max, 3990u);
}

TEST_F(ZoneMapSstTest, FilteredScanSkipsNonMatchingBlocks) {
  Build(400);
  // Column 1 spans [0, 3990]; select a narrow mid-range band. Blocks whose
  // band doesn't intersect vanish from the scan without being read.
  ZoneMapScanFilter filter({{1, PredOp::kBetween, 2000, 2100}});
  filter.SetWindow(Slice(), Slice());  // whole file is the skip window
  const uint64_t reads_before = stats_.data_block_reads.load();
  const int rows = CountRows(&filter);
  const uint64_t reads =
      stats_.data_block_reads.load() - reads_before;
  EXPECT_GT(filter.blocks_skipped(), 0u);
  EXPECT_LT(reads, reader_->zone_maps()->blocks.size());
  // Every row of the predicate band survives: skipping is conservative.
  EXPECT_GE(rows, 11);  // keys 200..210 carry values 2000..2100
  EXPECT_LT(rows, 400);

  // Disarmed, the same filter skips nothing and the scan sees every row.
  ZoneMapScanFilter disarmed({{1, PredOp::kBetween, 2000, 2100}});
  EXPECT_EQ(CountRows(&disarmed), 400);
  EXPECT_EQ(disarmed.blocks_skipped(), 0u);
}

TEST_F(ZoneMapSstTest, AllNullColumnIsSkippable) {
  Build(300, /*null_c2=*/true);
  const ZoneMaps* zones = reader_->zone_maps();
  ASSERT_NE(zones, nullptr);
  for (const ZoneMapEntry& entry : zones->blocks) {
    ASSERT_EQ(entry.cols.size(), 2u);
    EXPECT_FALSE(entry.cols[1].has_values);
  }
  // Any predicate on the all-null column fails every row of every block.
  // SeekToFirst always lands in the first block (position-changing calls
  // never skip, so a filter cannot hide an explicitly sought block); every
  // forward hop after it is skipped.
  ZoneMapScanFilter filter({{2, PredOp::kGe, 0}});
  filter.SetWindow(Slice(), Slice());
  const ZoneMapEntry& first = zones->blocks.front();
  const int first_block_rows =
      static_cast<int>(first.last_user_key - first.first_user_key + 1);
  EXPECT_EQ(CountRows(&filter), first_block_rows);
  EXPECT_EQ(filter.blocks_skipped(), zones->blocks.size() - 1);
}

TEST_F(ZoneMapSstTest, CorruptZoneBlockFallsBackToFullScan) {
  Build(400);
  ASSERT_NE(reader_->zone_maps(), nullptr);

  std::string contents;
  ASSERT_TRUE(env_->ReadFileToString("/zone.sst", &contents).ok());
  Slice tail(contents.data() + contents.size() - Footer::kEncodedLength,
             Footer::kEncodedLength);
  Footer footer;
  ASSERT_TRUE(footer.DecodeFrom(&tail).ok());
  ASSERT_GT(footer.zone_handle.size, 0u);
  // Flip a byte inside the zone block: its CRC (or decode) fails and the
  // reader silently drops the zone maps instead of failing Open.
  contents[footer.zone_handle.offset + footer.zone_handle.size / 2] ^= 0xff;
  ASSERT_TRUE(env_->WriteStringToFile(Slice(contents), "/zone.sst").ok());
  Open();
  EXPECT_EQ(reader_->zone_maps(), nullptr);
  EXPECT_EQ(reader_->file_zone(), nullptr);

  // With no zone maps an armed filter has no verdicts: nothing is skipped.
  ZoneMapScanFilter filter({{1, PredOp::kEq, 999999}});
  filter.SetWindow(Slice(), Slice());
  EXPECT_EQ(CountRows(&filter), 400);
  EXPECT_EQ(filter.blocks_skipped(), 0u);
}

TEST_F(ZoneMapSstTest, UnconditionalPredicateSkipsWithoutWindow) {
  Build(400);
  // No window is ever armed. A windowed-only filter must not skip: the
  // merge has not proven sole contribution.
  ZoneMapScanFilter windowed({{1, PredOp::kGt, 999999}});
  EXPECT_EQ(CountRows(&windowed), 400);
  EXPECT_EQ(windowed.blocks_skipped(), 0u);

  // The same predicate marked unconditional (scan planning proved no other
  // source covers column 1) vetoes blocks window-free. SeekToFirst still
  // lands in the first block — position-changing calls never skip — so
  // exactly the first block's rows survive.
  ZoneMapScanFilter filter({{1, PredOp::kGt, 999999}}, {true});
  const ZoneMaps* zones = reader_->zone_maps();
  const ZoneMapEntry& first = zones->blocks.front();
  EXPECT_EQ(CountRows(&filter),
            static_cast<int>(first.last_user_key - first.first_user_key + 1));
  EXPECT_EQ(filter.blocks_skipped(), zones->blocks.size() - 1);
}

TEST_F(ZoneMapSstTest, FileLevelVerdictCountsSkippedFiles) {
  Build(400);
  const ZoneMapEntry* file_zone = reader_->file_zone();
  ASSERT_NE(file_zone, nullptr);
  const size_t blocks = reader_->zone_maps()->blocks.size();

  // Column 1 spans [0, 3990]; an unconditional predicate above the file max
  // rejects the whole file with no window armed and books every block it
  // holds as skipped, plus one whole-file skip.
  ZoneMapScanFilter filter({{1, PredOp::kGt, 999999}}, {true});
  EXPECT_TRUE(filter.CanSkipFile(*file_zone, blocks));
  EXPECT_EQ(filter.files_skipped(), 1u);
  EXPECT_EQ(filter.blocks_skipped(), blocks);

  // A band intersecting the file's range cannot reject it; neither can a
  // failing predicate lacking the unconditional flag (file hops honor the
  // windowed-only contract too).
  ZoneMapScanFilter matching({{1, PredOp::kBetween, 0, 50}}, {true});
  EXPECT_FALSE(matching.CanSkipFile(*file_zone, blocks));
  EXPECT_EQ(matching.files_skipped(), 0u);
  ZoneMapScanFilter no_flag({{1, PredOp::kGt, 999999}});
  EXPECT_FALSE(no_flag.CanSkipFile(*file_zone, blocks));
  EXPECT_EQ(no_flag.files_skipped(), 0u);
}

// ------------------------------------------- RunIterator file-level skips --

class RunZoneSkipTest : public ::testing::Test {
 protected:
  void SetUp() override { env_ = NewMemEnv(); }

  /// One run SST holding keys [lo, hi]: column 1 = key * 10, column 2 = 500.
  std::shared_ptr<FileMetaData> BuildFile(uint64_t number, uint64_t lo,
                                          uint64_t hi) {
    const std::string name = "/" + std::to_string(number) + ".sst";
    std::unique_ptr<WritableFile> file;
    EXPECT_TRUE(env_->NewWritableFile(name, &file).ok());
    SstBuildOptions options;
    options.block_size = 256;
    options.zone_columns = {{1, 4}, {2, 4}};
    SstBuilder builder(options, std::move(file));
    for (uint64_t k = lo; k <= hi; ++k) {
      builder.Add(IKey(k, k + 1), ZoneRow(static_cast<uint32_t>(k) * 10, 500));
    }
    EXPECT_TRUE(builder.Finish().ok());
    auto meta = std::make_shared<FileMetaData>();
    meta->file_number = number;
    meta->smallest = IKey(lo, lo + 1);
    meta->largest = IKey(hi, hi + 1);
    std::unique_ptr<SstReader> reader;
    EXPECT_TRUE(SstReader::Open(env_.get(), name, number, nullptr, &stats_,
                                &reader)
                    .ok());
    meta->reader = std::move(reader);
    return meta;
  }

  /// Keys 0..299 split over three files; only the last holds column-1
  /// values >= 2000.
  Version::FileList ThreeFileRun() {
    return {BuildFile(1, 0, 99), BuildFile(2, 100, 199),
            BuildFile(3, 200, 299)};
  }

  std::unique_ptr<Env> env_;
  Stats stats_;
};

TEST_F(RunZoneSkipTest, SeekSkipsNonMatchingFileUnopened) {
  Version::FileList run = ThreeFileRun();
  // Seek lands in file 2 (keys 100..199, column 1 in [1000, 1990]); its
  // folded zone fails the predicate, so the file is hopped without a single
  // block fetch and the cursor comes up on file 3's first key.
  ZoneMapScanFilter filter({{1, PredOp::kGe, 2000}}, {true});
  auto iter = NewRunIterator(run, &filter);
  const uint64_t reads_before = stats_.data_block_reads.load();
  iter->Seek(IKey(100, kMaxSequenceNumber));
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(DecodeKey64(ExtractUserKey(iter->key())), 200u);
  EXPECT_EQ(filter.files_skipped(), 1u);
  EXPECT_EQ(stats_.data_block_reads.load() - reads_before, 1u);

  // Without the unconditional flag (and no window) the same seek opens
  // file 2 and positions normally.
  ZoneMapScanFilter no_flag({{1, PredOp::kGe, 2000}});
  auto plain = NewRunIterator(run, &no_flag);
  plain->Seek(IKey(100, kMaxSequenceNumber));
  ASSERT_TRUE(plain->Valid());
  EXPECT_EQ(DecodeKey64(ExtractUserKey(plain->key())), 100u);
  EXPECT_EQ(no_flag.files_skipped(), 0u);
}

TEST_F(RunZoneSkipTest, SeekToFirstSkipsLeadingFiles) {
  Version::FileList run = ThreeFileRun();
  ZoneMapScanFilter filter({{1, PredOp::kGe, 2000}}, {true});
  auto iter = NewRunIterator(run, &filter);
  iter->SeekToFirst();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(DecodeKey64(ExtractUserKey(iter->key())), 200u);
  EXPECT_EQ(filter.files_skipped(), 2u);
  // The surviving file scans to its end.
  int rows = 0;
  for (; iter->Valid(); iter->Next()) ++rows;
  EXPECT_EQ(rows, 100);
}

TEST_F(ZoneMapSstTest, FileWithoutZoneColumnsHasNoZoneMaps) {
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env_->NewWritableFile("/zone.sst", &file).ok());
  SstBuildOptions plain_options;
  plain_options.block_size = 256;
  SstBuilder builder(plain_options, std::move(file));
  for (int i = 0; i < 200; ++i) {
    builder.Add(IKey(i, i + 1), ZoneRow(1, 2));
  }
  ASSERT_TRUE(builder.Finish().ok());
  Open();
  EXPECT_EQ(reader_->zone_maps(), nullptr);
  ZoneMapScanFilter filter({{1, PredOp::kEq, 999999}});
  filter.SetWindow(Slice(), Slice());
  EXPECT_EQ(CountRows(&filter), 200);
}

// ZoneMapScanFilter verdict unit tests: a zone of keys [10, 20] whose
// column 1 values span [100, 200].
class ZoneMapFilterTest : public ::testing::Test {
 protected:
  ZoneMapFilterTest() {
    zone_.first_user_key = 10;
    zone_.last_user_key = 20;
    zone_.self_contained = true;
    zone_.cols = {{1, true, 100, 200}};
  }

  /// CanSkip under an unbounded armed window.
  bool Skips(const ScanPredicate& pred) {
    ZoneMapScanFilter filter({pred});
    filter.SetWindow(Slice(), Slice());
    return filter.CanSkip(zone_, 1);
  }

  ZoneMapEntry zone_;
};

TEST_F(ZoneMapFilterTest, RangeBoundsAreInclusive) {
  // Predicates touching exactly min or max may match: never skip.
  EXPECT_FALSE(Skips({1, PredOp::kEq, 100}));
  EXPECT_FALSE(Skips({1, PredOp::kEq, 200}));
  EXPECT_FALSE(Skips({1, PredOp::kLe, 100}));
  EXPECT_FALSE(Skips({1, PredOp::kGe, 200}));
  EXPECT_FALSE(Skips({1, PredOp::kBetween, 200, 300}));
  EXPECT_FALSE(Skips({1, PredOp::kBetween, 50, 100}));
  // One past the bound provably fails.
  EXPECT_TRUE(Skips({1, PredOp::kEq, 99}));
  EXPECT_TRUE(Skips({1, PredOp::kEq, 201}));
  EXPECT_TRUE(Skips({1, PredOp::kLt, 100}));
  EXPECT_TRUE(Skips({1, PredOp::kGt, 200}));
  EXPECT_TRUE(Skips({1, PredOp::kBetween, 201, 300}));
  EXPECT_TRUE(Skips({1, PredOp::kBetween, 50, 99}));
}

TEST_F(ZoneMapFilterTest, UnknownColumnGivesNoVerdict) {
  EXPECT_FALSE(Skips({7, PredOp::kEq, 0}));
}

TEST_F(ZoneMapFilterTest, WindowGatesEveryVerdict) {
  ZoneMapScanFilter filter({{1, PredOp::kEq, 99}});
  // Disarmed: no skip even though the predicate provably fails.
  EXPECT_FALSE(filter.CanSkip(zone_, 1));
  // Armed but the window ends inside the zone (bound 14 < last key 20):
  // a tied source may still contribute to the zone's tail keys.
  const std::string limit = EncodeKey64(15);
  filter.SetWindow(Slice(limit), Slice());
  EXPECT_FALSE(filter.CanSkip(zone_, 1));
  // Window covers the zone: skip, counting the avoided block reads.
  const std::string wide = EncodeKey64(1000);
  filter.SetWindow(Slice(wide), Slice());
  EXPECT_TRUE(filter.CanSkip(zone_, 3));
  EXPECT_TRUE(filter.CanSkip(zone_, 2));
  EXPECT_EQ(filter.blocks_skipped(), 5u);
  // ClearWindow disarms again.
  filter.ClearWindow();
  EXPECT_FALSE(filter.CanSkip(zone_, 1));
  // The scan's hi bound clamps the window below the zone's tail too.
  const std::string hi = EncodeKey64(12);
  filter.SetWindow(Slice(), Slice(hi));
  EXPECT_FALSE(filter.CanSkip(zone_, 1));
}

TEST_F(ZoneMapFilterTest, StraddlingBlocksNeverSkip) {
  zone_.self_contained = false;
  EXPECT_FALSE(Skips({1, PredOp::kEq, 99}));
}

TEST(ZoneMapStraddleTest, BuilderMarksKeySpanningBlocks) {
  // Many versions of one user key force it across block boundaries; every
  // block it touches must be !self_contained.
  auto env = NewMemEnv();
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env->NewWritableFile("/straddle.sst", &file).ok());
  SstBuildOptions options;
  options.block_size = 128;
  options.zone_columns = {{1, 4}, {2, 4}};
  SstBuilder builder(options, std::move(file));
  builder.Add(IKey(1, 500), ZoneRow(7, 8));
  for (int s = 400; s > 0; --s) {  // one hot key, descending seq
    builder.Add(IKey(2, s, kTypePartialRow), ZoneRow(s, std::nullopt));
  }
  builder.Add(IKey(3, 1), ZoneRow(9, 10));
  ASSERT_TRUE(builder.Finish().ok());
  std::unique_ptr<SstReader> reader;
  ASSERT_TRUE(
      SstReader::Open(env.get(), "/straddle.sst", 1, nullptr, nullptr, &reader)
          .ok());
  const ZoneMaps* zones = reader->zone_maps();
  ASSERT_NE(zones, nullptr);
  ASSERT_GT(zones->blocks.size(), 2u);
  int straddling = 0;
  for (const ZoneMapEntry& entry : zones->blocks) {
    if (!entry.self_contained) ++straddling;
  }
  // Key 2 spans every interior block boundary.
  EXPECT_GE(straddling, 2);
}

// ----------------------------------------------------------- BlockCache --

TEST(BlockCacheTest, InsertLookupErase) {
  BlockCache cache(1 << 20);
  auto block = std::make_shared<Block>(std::string(100, 'x'));
  cache.Insert(1, 0, block);
  EXPECT_EQ(cache.Lookup(1, 0), block);
  EXPECT_EQ(cache.Lookup(1, 1), nullptr);
  EXPECT_EQ(cache.Lookup(2, 0), nullptr);
  cache.EraseFile(1);
  EXPECT_EQ(cache.Lookup(1, 0), nullptr);
}

TEST(BlockCacheTest, EvictsLeastRecentlyUsed) {
  BlockCache cache(1000);
  auto make_block = [] { return std::make_shared<Block>(std::string(300, 'x')); };
  cache.Insert(1, 0, make_block());
  cache.Insert(1, 1, make_block());
  ASSERT_NE(cache.Lookup(1, 0), nullptr);  // touch 0: now 1 is LRU
  cache.Insert(1, 2, make_block());        // evicts 1
  EXPECT_NE(cache.Lookup(1, 0), nullptr);
  EXPECT_EQ(cache.Lookup(1, 1), nullptr);
  EXPECT_NE(cache.Lookup(1, 2), nullptr);
}

TEST(BlockCacheTest, ChargeTracksUsage) {
  BlockCache cache(1 << 20);
  EXPECT_EQ(cache.charge(), 0u);
  cache.Insert(1, 0, std::make_shared<Block>(std::string(1000, 'x')));
  EXPECT_GT(cache.charge(), 1000u);
  cache.EraseFile(1);
  EXPECT_EQ(cache.charge(), 0u);
}

}  // namespace
}  // namespace laser
