// Iterator machinery tests: merging iterator, run iterator, projecting
// iterator, VersionMerger semantics, contribution/column/level merging.

#include <gtest/gtest.h>

#include "laser/cg_compaction.h"
#include "laser/column_merging_iterator.h"
#include "laser/level_merging_iterator.h"
#include "lsm/merging_iterator.h"
#include "lsm/run_iterator.h"
#include "memtable/memtable.h"
#include "util/coding.h"

namespace laser {
namespace {

/// Simple in-memory iterator over (internal_key, value) pairs for tests.
class VectorIterator final : public Iterator {
 public:
  explicit VectorIterator(std::vector<std::pair<std::string, std::string>> data)
      : data_(std::move(data)) {}

  bool Valid() const override { return pos_ < data_.size(); }
  void SeekToFirst() override { pos_ = 0; }
  void Seek(const Slice& target) override {
    InternalKeyComparator cmp;
    pos_ = 0;
    while (pos_ < data_.size() && cmp.Compare(Slice(data_[pos_].first), target) < 0) {
      ++pos_;
    }
  }
  void Next() override { ++pos_; }
  Slice key() const override { return Slice(data_[pos_].first); }
  Slice value() const override { return Slice(data_[pos_].second); }
  Status status() const override { return Status::OK(); }

 private:
  std::vector<std::pair<std::string, std::string>> data_;
  size_t pos_ = 0;
};

std::string IK(uint64_t key, SequenceNumber seq, ValueType type = kTypeFullRow) {
  return MakeInternalKey(EncodeKey64(key), seq, type);
}

TEST(MergingIteratorTest, InterleavesSortedStreams) {
  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(std::make_unique<VectorIterator>(
      std::vector<std::pair<std::string, std::string>>{
          {IK(1, 1), "a"}, {IK(5, 1), "b"}, {IK(9, 1), "c"}}));
  children.push_back(std::make_unique<VectorIterator>(
      std::vector<std::pair<std::string, std::string>>{
          {IK(2, 1), "d"}, {IK(5, 2), "e"}, {IK(10, 1), "f"}}));
  auto merged = NewMergingIterator(std::move(children));

  std::vector<std::string> values;
  for (merged->SeekToFirst(); merged->Valid(); merged->Next()) {
    values.push_back(merged->value().ToString());
  }
  // Key 5: seq 2 sorts before seq 1.
  EXPECT_EQ(values, (std::vector<std::string>{"a", "d", "e", "b", "c", "f"}));
}

TEST(MergingIteratorTest, SeekLandsOnLowerBound) {
  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(std::make_unique<VectorIterator>(
      std::vector<std::pair<std::string, std::string>>{{IK(1, 1), "a"},
                                                       {IK(9, 1), "c"}}));
  children.push_back(std::make_unique<VectorIterator>(
      std::vector<std::pair<std::string, std::string>>{{IK(4, 1), "b"}}));
  auto merged = NewMergingIterator(std::move(children));
  merged->Seek(IK(2, kMaxSequenceNumber));
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ(merged->value().ToString(), "b");
}

TEST(MergingIteratorTest, EmptyChildren) {
  auto merged = NewMergingIterator({});
  merged->SeekToFirst();
  EXPECT_FALSE(merged->Valid());
}

// ---------------------------------------------------------- VersionMerger --

class VersionMergerTest : public ::testing::Test {
 protected:
  VersionMergerTest() : schema_(Schema::UniformInt32(4)), codec_(&schema_) {}

  MergedEntry Full(SequenceNumber seq, uint64_t base) {
    std::vector<ColumnValuePair> vals;
    for (int c = 1; c <= 4; ++c) vals.push_back({c, base + c});
    return {kTypeFullRow, seq, codec_.Encode(cg_, vals)};
  }
  MergedEntry Partial(SequenceNumber seq, std::vector<ColumnValuePair> vals) {
    return {kTypePartialRow, seq, codec_.Encode(cg_, vals)};
  }
  MergedEntry Tombstone(SequenceNumber seq) { return {kTypeDeletion, seq, ""}; }

  Schema schema_;
  RowCodec codec_;
  ColumnSet cg_ = MakeColumnRange(1, 4);
};

TEST_F(VersionMergerTest, NewestFullAbsorbsOlder) {
  VersionMerger merger(&codec_, cg_, {}, /*bottom_level=*/false);
  auto out = merger.Merge({Full(10, 100), Full(5, 500), Partial(3, {{1, 1}})});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].sequence, 10u);
  EXPECT_EQ(out[0].type, kTypeFullRow);
}

TEST_F(VersionMergerTest, PartialMergesIntoOlderFull) {
  VersionMerger merger(&codec_, cg_, {}, false);
  auto out = merger.Merge({Partial(10, {{2, 999}}), Full(5, 100)});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].type, kTypeFullRow);
  EXPECT_EQ(out[0].sequence, 10u);
  std::vector<ColumnValuePair> vals;
  ASSERT_TRUE(codec_.Decode(cg_, Slice(out[0].value), &vals).ok());
  EXPECT_EQ(vals[1].value, 999u);   // updated
  EXPECT_EQ(vals[0].value, 101u);   // from the full row
}

TEST_F(VersionMergerTest, PartialsMergeTogether) {
  VersionMerger merger(&codec_, cg_, {}, false);
  auto out = merger.Merge({Partial(10, {{2, 22}}), Partial(8, {{3, 33}})});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].type, kTypePartialRow);
  std::vector<ColumnValuePair> vals;
  ASSERT_TRUE(codec_.Decode(cg_, Slice(out[0].value), &vals).ok());
  ASSERT_EQ(vals.size(), 2u);
  EXPECT_EQ(vals[0].value, 22u);
  EXPECT_EQ(vals[1].value, 33u);
}

TEST_F(VersionMergerTest, TombstoneAbsorbsOlderAndSurvivesMidLevels) {
  VersionMerger merger(&codec_, cg_, {}, false);
  auto out = merger.Merge({Tombstone(10), Full(5, 100)});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].type, kTypeDeletion);
}

TEST_F(VersionMergerTest, TombstoneDroppedAtBottom) {
  VersionMerger merger(&codec_, cg_, {}, /*bottom_level=*/true);
  auto out = merger.Merge({Tombstone(10), Full(5, 100)});
  EXPECT_TRUE(out.empty());
}

TEST_F(VersionMergerTest, PartialOverTombstoneKeepsBoth) {
  VersionMerger merger(&codec_, cg_, {}, false);
  auto out = merger.Merge({Partial(10, {{1, 1}}), Tombstone(5), Full(2, 100)});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].type, kTypePartialRow);
  EXPECT_EQ(out[1].type, kTypeDeletion);
}

TEST_F(VersionMergerTest, PartialOverTombstoneCollapsesAtBottom) {
  VersionMerger merger(&codec_, cg_, {}, true);
  auto out = merger.Merge({Partial(10, {{1, 1}}), Tombstone(5), Full(2, 100)});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].type, kTypePartialRow);  // absent columns are null
}

TEST_F(VersionMergerTest, SnapshotBoundaryPreservesVersions) {
  // Snapshot at seq 6 must keep the pre-snapshot version visible.
  VersionMerger merger(&codec_, cg_, {6}, false);
  auto out = merger.Merge({Full(10, 100), Full(5, 500)});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].sequence, 10u);
  EXPECT_EQ(out[1].sequence, 5u);
}

TEST_F(VersionMergerTest, SameStripeMergesDespiteSnapshotElsewhere) {
  VersionMerger merger(&codec_, cg_, {100}, false);
  auto out = merger.Merge({Full(10, 100), Full(5, 500)});
  ASSERT_EQ(out.size(), 1u);  // both below the snapshot -> same stripe
}

// ----------------------------------------------------- ProjectingIterator --

TEST(ProjectingIteratorTest, ReEncodesAndSkipsEmptyPartials) {
  Schema schema = Schema::UniformInt32(4);
  RowCodec codec(&schema);
  const ColumnSet parent = MakeColumnRange(1, 4);
  const ColumnSet child = {3, 4};

  std::vector<std::pair<std::string, std::string>> data;
  data.emplace_back(IK(1, 3),
                    codec.Encode(parent, {{1, 11}, {2, 12}, {3, 13}, {4, 14}}));
  data.emplace_back(IK(2, 2, kTypePartialRow), codec.Encode(parent, {{1, 7}}));
  data.emplace_back(IK(3, 1, kTypeDeletion), "");

  auto iter = NewProjectingIterator(std::make_unique<VectorIterator>(data),
                                    &codec, parent, child);
  iter->SeekToFirst();
  ASSERT_TRUE(iter->Valid());
  {
    // Full row restricted to <3,4>.
    std::vector<ColumnValuePair> vals;
    ASSERT_TRUE(codec.Decode(child, iter->value(), &vals).ok());
    ASSERT_EQ(vals.size(), 2u);
    EXPECT_EQ(vals[0].value, 13u);
    EXPECT_EQ(vals[1].value, 14u);
  }
  iter->Next();
  // Key 2's partial had no child columns: skipped. Key 3's tombstone passes.
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(ExtractValueType(iter->key()), kTypeDeletion);
  iter->Next();
  EXPECT_FALSE(iter->Valid());
}

// ------------------------------------------- Contribution/Column/Level ----

class StitchTest : public ::testing::Test {
 protected:
  StitchTest() : schema_(Schema::UniformInt32(4)), codec_(&schema_) {}

  std::unique_ptr<ContributionIterator> MakeSource(
      std::vector<std::pair<std::string, std::string>> data, ColumnSet source_cols,
      ColumnSet projection, SequenceNumber snapshot = kMaxSequenceNumber) {
    return std::make_unique<ContributionIterator>(
        std::make_unique<VectorIterator>(std::move(data)), &codec_,
        std::move(source_cols), std::move(projection), snapshot);
  }

  Schema schema_;
  RowCodec codec_;
};

TEST_F(StitchTest, ContributionFoldsVersions) {
  const ColumnSet all = MakeColumnRange(1, 4);
  std::vector<std::pair<std::string, std::string>> data;
  data.emplace_back(IK(1, 5, kTypePartialRow), codec_.Encode(all, {{2, 99}}));
  data.emplace_back(IK(1, 3), codec_.Encode(all, {{1, 1}, {2, 2}, {3, 3}, {4, 4}}));
  auto src = MakeSource(std::move(data), all, {1, 2});
  src->SeekToFirst();
  ASSERT_TRUE(src->Valid());
  EXPECT_EQ(src->states()[0], ColumnState::kValue);
  EXPECT_EQ(src->values()[0], 1u);
  EXPECT_EQ(src->states()[1], ColumnState::kValue);
  EXPECT_EQ(src->values()[1], 99u);  // newer partial wins
}

TEST_F(StitchTest, ContributionSkipsIrrelevantKeys) {
  const ColumnSet all = MakeColumnRange(1, 4);
  std::vector<std::pair<std::string, std::string>> data;
  data.emplace_back(IK(1, 5, kTypePartialRow), codec_.Encode(all, {{4, 9}}));
  data.emplace_back(IK(2, 3), codec_.Encode(all, {{1, 1}, {2, 2}, {3, 3}, {4, 4}}));
  auto src = MakeSource(std::move(data), all, {1});
  src->SeekToFirst();
  ASSERT_TRUE(src->Valid());
  EXPECT_EQ(DecodeKey64(src->user_key()), 2u);  // key 1 had nothing for col 1
}

TEST_F(StitchTest, ContributionRespectsSnapshot) {
  const ColumnSet all = MakeColumnRange(1, 4);
  std::vector<std::pair<std::string, std::string>> data;
  data.emplace_back(IK(1, 9), codec_.Encode(all, {{1, 900}, {2, 2}, {3, 3}, {4, 4}}));
  data.emplace_back(IK(1, 2), codec_.Encode(all, {{1, 200}, {2, 2}, {3, 3}, {4, 4}}));
  auto src = MakeSource(std::move(data), all, {1}, /*snapshot=*/5);
  src->SeekToFirst();
  ASSERT_TRUE(src->Valid());
  EXPECT_EQ(src->values()[0], 200u);
}

TEST_F(StitchTest, ColumnMergingStitchesDisjointGroups) {
  const ColumnSet g1 = {1, 2};
  const ColumnSet g2 = {3, 4};
  const ColumnSet proj = {2, 3};

  std::vector<std::pair<std::string, std::string>> d1;
  d1.emplace_back(IK(1, 4), codec_.Encode(g1, {{1, 11}, {2, 12}}));
  d1.emplace_back(IK(2, 4), codec_.Encode(g1, {{1, 21}, {2, 22}}));
  std::vector<std::pair<std::string, std::string>> d2;
  d2.emplace_back(IK(1, 4), codec_.Encode(g2, {{3, 13}, {4, 14}}));
  d2.emplace_back(IK(3, 4), codec_.Encode(g2, {{3, 33}, {4, 34}}));

  std::vector<std::unique_ptr<ContributionSource>> children;
  children.push_back(MakeSource(std::move(d1), g1, proj));
  children.push_back(MakeSource(std::move(d2), g2, proj));
  ColumnMergingIterator merged(std::move(children), proj.size());

  merged.SeekToFirst();
  ASSERT_TRUE(merged.Valid());
  EXPECT_EQ(DecodeKey64(merged.user_key()), 1u);
  EXPECT_EQ(merged.values()[0], 12u);  // col 2 from g1
  EXPECT_EQ(merged.values()[1], 13u);  // col 3 from g2

  merged.Next();
  ASSERT_TRUE(merged.Valid());
  EXPECT_EQ(DecodeKey64(merged.user_key()), 2u);
  EXPECT_EQ(merged.states()[1], ColumnState::kAbsent);  // no g2 entry for key 2

  merged.Next();
  ASSERT_TRUE(merged.Valid());
  EXPECT_EQ(DecodeKey64(merged.user_key()), 3u);
  EXPECT_EQ(merged.states()[0], ColumnState::kAbsent);

  merged.Next();
  EXPECT_FALSE(merged.Valid());
}

TEST_F(StitchTest, LevelMergingNewestSourceWins) {
  const ColumnSet all = MakeColumnRange(1, 4);
  const ColumnSet proj = {1, 2};

  // "Upper level": a partial update of column 1 at seq 9.
  std::vector<std::pair<std::string, std::string>> upper;
  upper.emplace_back(IK(1, 9, kTypePartialRow), codec_.Encode(all, {{1, 111}}));
  // "Lower level": the original full row at seq 2.
  std::vector<std::pair<std::string, std::string>> lower;
  lower.emplace_back(IK(1, 2), codec_.Encode(all, {{1, 1}, {2, 2}, {3, 3}, {4, 4}}));

  std::vector<std::unique_ptr<ContributionSource>> sources;
  sources.push_back(MakeSource(std::move(upper), all, proj));
  sources.push_back(MakeSource(std::move(lower), all, proj));
  LevelMergingIterator merged(std::move(sources), proj.size());

  merged.SeekToFirst();
  ASSERT_TRUE(merged.Valid());
  EXPECT_EQ(*merged.row()[0], 111u);  // from the upper level
  EXPECT_EQ(*merged.row()[1], 2u);    // stitched from the lower level
  merged.Next();
  EXPECT_FALSE(merged.Valid());
}

TEST_F(StitchTest, LevelMergingSkipsFullyDeletedRows) {
  const ColumnSet all = MakeColumnRange(1, 4);
  const ColumnSet proj = {1};

  std::vector<std::pair<std::string, std::string>> upper;
  upper.emplace_back(IK(1, 9, kTypeDeletion), "");
  std::vector<std::pair<std::string, std::string>> lower;
  lower.emplace_back(IK(1, 2), codec_.Encode(all, {{1, 1}, {2, 2}, {3, 3}, {4, 4}}));
  lower.emplace_back(IK(2, 3), codec_.Encode(all, {{1, 5}, {2, 2}, {3, 3}, {4, 4}}));

  std::vector<std::unique_ptr<ContributionSource>> sources;
  sources.push_back(MakeSource(std::move(upper), all, proj));
  sources.push_back(MakeSource(std::move(lower), all, proj));
  LevelMergingIterator merged(std::move(sources), proj.size());

  merged.SeekToFirst();
  ASSERT_TRUE(merged.Valid());
  EXPECT_EQ(DecodeKey64(merged.user_key()), 2u);  // key 1 deleted
  merged.Next();
  EXPECT_FALSE(merged.Valid());
}

TEST_F(StitchTest, LevelMergingSeek) {
  const ColumnSet all = MakeColumnRange(1, 4);
  std::vector<std::pair<std::string, std::string>> data;
  for (uint64_t k = 0; k < 10; ++k) {
    data.emplace_back(IK(k, 1),
                      codec_.Encode(all, {{1, k}, {2, 2}, {3, 3}, {4, 4}}));
  }
  std::vector<std::unique_ptr<ContributionSource>> sources;
  sources.push_back(MakeSource(std::move(data), all, {1}));
  LevelMergingIterator merged(std::move(sources), 1);
  merged.Seek(EncodeKey64(7));
  ASSERT_TRUE(merged.Valid());
  EXPECT_EQ(DecodeKey64(merged.user_key()), 7u);
}

}  // namespace
}  // namespace laser
