// CgConfig tests: canonical designs, validation (partition + containment),
// group queries, rendering.

#include <gtest/gtest.h>

#include "laser/cg_config.h"

namespace laser {
namespace {

TEST(CgConfigTest, RowOnlyHasOneGroupEverywhere) {
  CgConfig config = CgConfig::RowOnly(30, 8);
  ASSERT_EQ(config.num_levels(), 8);
  for (int level = 0; level < 8; ++level) {
    EXPECT_EQ(config.num_groups(level), 1);
    EXPECT_EQ(config.groups(level)[0], MakeColumnRange(1, 30));
  }
  EXPECT_TRUE(config.Validate(30).ok());
}

TEST(CgConfigTest, ColumnOnlyHasSingletons) {
  CgConfig config = CgConfig::ColumnOnly(5, 4);
  EXPECT_EQ(config.num_groups(0), 1);  // level 0 stays row format
  for (int level = 1; level < 4; ++level) {
    ASSERT_EQ(config.num_groups(level), 5);
    for (int g = 0; g < 5; ++g) {
      EXPECT_EQ(config.groups(level)[g], (ColumnSet{g + 1}));
    }
  }
  EXPECT_TRUE(config.Validate(5).ok());
}

TEST(CgConfigTest, EquiWidthSplitsEvenly) {
  CgConfig config = CgConfig::EquiWidth(30, 8, 6);
  for (int level = 1; level < 8; ++level) {
    ASSERT_EQ(config.num_groups(level), 5);
    EXPECT_EQ(config.groups(level)[0], MakeColumnRange(1, 6));
    EXPECT_EQ(config.groups(level)[4], MakeColumnRange(25, 30));
  }
  EXPECT_TRUE(config.Validate(30).ok());
}

TEST(CgConfigTest, EquiWidthLastGroupMayBeNarrow) {
  CgConfig config = CgConfig::EquiWidth(10, 3, 4);
  ASSERT_EQ(config.num_groups(1), 3);
  EXPECT_EQ(config.groups(1)[2], MakeColumnRange(9, 10));
  EXPECT_TRUE(config.Validate(10).ok());
}

TEST(CgConfigTest, HtapSimpleSwitchesLayout) {
  CgConfig config = CgConfig::HtapSimple(30, 8, 6);
  for (int level = 0; level < 6; ++level) EXPECT_EQ(config.num_groups(level), 1);
  for (int level = 6; level < 8; ++level) EXPECT_EQ(config.num_groups(level), 30);
  EXPECT_TRUE(config.Validate(30).ok());
}

TEST(CgConfigTest, ValidateRejectsNonRowLevel0) {
  std::vector<std::vector<ColumnSet>> levels = {
      {MakeColumnRange(1, 2), MakeColumnRange(3, 4)},  // level 0 split: invalid
      {MakeColumnRange(1, 4)},
  };
  CgConfig config(std::move(levels));
  EXPECT_FALSE(config.Validate(4).ok());
}

TEST(CgConfigTest, ValidateRejectsIncompletePartition) {
  std::vector<std::vector<ColumnSet>> levels = {
      {MakeColumnRange(1, 4)},
      {MakeColumnRange(1, 3)},  // column 4 missing
  };
  CgConfig config(std::move(levels));
  EXPECT_FALSE(config.Validate(4).ok());
}

TEST(CgConfigTest, ValidateRejectsOverlappingGroups) {
  std::vector<std::vector<ColumnSet>> levels = {
      {MakeColumnRange(1, 4)},
      {MakeColumnRange(1, 2), MakeColumnRange(2, 4)},  // 2 appears twice
  };
  CgConfig config(std::move(levels));
  EXPECT_FALSE(config.Validate(4).ok());
}

TEST(CgConfigTest, ValidateRejectsContainmentViolation) {
  // Level 1: <1,2> <3,4>; level 2: <2,3> spans two parents (the paper's
  // example of an invalid choice).
  std::vector<std::vector<ColumnSet>> levels = {
      {MakeColumnRange(1, 4)},
      {MakeColumnRange(1, 2), MakeColumnRange(3, 4)},
      {{1}, {2, 3}, {4}},
  };
  CgConfig config(std::move(levels));
  Status s = config.Validate(4);
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
}

TEST(CgConfigTest, GroupOfAndOverlap) {
  CgConfig config = CgConfig::EquiWidth(30, 4, 15);
  EXPECT_EQ(config.GroupOf(1, 1), 0);
  EXPECT_EQ(config.GroupOf(1, 15), 0);
  EXPECT_EQ(config.GroupOf(1, 16), 1);
  EXPECT_EQ(config.GroupOf(0, 30), 0);

  const auto overlapping = config.OverlappingGroups(1, {10, 20});
  EXPECT_EQ(overlapping, (std::vector<int>{0, 1}));
  EXPECT_EQ(config.OverlappingGroups(1, {1, 2, 3}), (std::vector<int>{0}));
}

TEST(CgConfigTest, ChildGroupsFollowContainment) {
  // L1: <1-15><16-30>; L2: <1-15><16-20><21-30>.
  std::vector<std::vector<ColumnSet>> levels = {
      {MakeColumnRange(1, 30)},
      {MakeColumnRange(1, 15), MakeColumnRange(16, 30)},
      {MakeColumnRange(1, 15), MakeColumnRange(16, 20), MakeColumnRange(21, 30)},
  };
  CgConfig config(std::move(levels));
  ASSERT_TRUE(config.Validate(30).ok());
  EXPECT_EQ(config.ChildGroups(0, 0), (std::vector<int>{0, 1}));
  EXPECT_EQ(config.ChildGroups(1, 0), (std::vector<int>{0}));
  EXPECT_EQ(config.ChildGroups(1, 1), (std::vector<int>{1, 2}));
}

TEST(CgConfigTest, ToStringMatchesFigure9Format) {
  CgConfig config = CgConfig::EquiWidth(30, 2, 15);
  const std::string rendered = config.ToString();
  EXPECT_NE(rendered.find("L0:<1-30>"), std::string::npos);
  EXPECT_NE(rendered.find("L1:<1-15><16-30>"), std::string::npos);
}

TEST(CgConfigTest, DOptDesignFromPaperValidates) {
  // Figure 9(b)'s design D-opt.
  std::vector<std::vector<ColumnSet>> levels = {
      {MakeColumnRange(1, 30)},
      {MakeColumnRange(1, 30)},
      {MakeColumnRange(1, 15), MakeColumnRange(16, 30)},
      {MakeColumnRange(1, 15), MakeColumnRange(16, 30)},
      {MakeColumnRange(1, 15), MakeColumnRange(16, 20), MakeColumnRange(21, 30)},
      {MakeColumnRange(1, 15), MakeColumnRange(16, 20), MakeColumnRange(21, 30)},
      {MakeColumnRange(1, 15), MakeColumnRange(16, 20), MakeColumnRange(21, 27),
       MakeColumnRange(28, 30)},
      {MakeColumnRange(1, 15), MakeColumnRange(16, 20), MakeColumnRange(21, 27),
       MakeColumnRange(28, 30)},
  };
  CgConfig config(std::move(levels));
  EXPECT_TRUE(config.Validate(30).ok());
}

}  // namespace
}  // namespace laser
