// Advanced engine tests: snapshots, concurrency, write stalls, obsolete-file
// GC, compaction priorities end-to-end, reopen cycles, WAL torn tails,
// manifest corruption, Posix-backed operation, and scan consistency under
// concurrent writes.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "laser/laser_db.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace laser {
namespace {

class LaserDbAdvancedTest : public ::testing::Test {
 protected:
  static constexpr int kColumns = 6;
  static constexpr int kLevels = 4;

  void SetUp() override {
    env_ = NewMemEnv();
    Reopen();
  }

  LaserOptions MakeOptions() {
    LaserOptions options = test::TinyTreeOptions(env_.get(), "/adv", kColumns,
                                                 kLevels);
    options.cg_config = CgConfig::EquiWidth(kColumns, kLevels, 3);
    return options;
  }

  void Reopen(LaserOptions options = LaserOptions()) {
    db_.reset();
    if (options.path.empty()) options = MakeOptions();
    ASSERT_TRUE(LaserDB::Open(options, &db_).ok());
  }

  std::vector<ColumnValue> Row(uint64_t key) {
    return test::TestRow(key, kColumns);
  }

  std::unique_ptr<Env> env_;
  std::unique_ptr<LaserDB> db_;
};

TEST_F(LaserDbAdvancedTest, SnapshotKeepsOldVersionsAcrossCompaction) {
  ASSERT_TRUE(db_->Insert(1, Row(1)).ok());
  auto snapshot = db_->GetSnapshot();
  const SequenceNumber pinned = snapshot->sequence();
  ASSERT_TRUE(db_->Insert(1, Row(2)).ok());
  for (uint64_t k = 10; k < 2000; ++k) ASSERT_TRUE(db_->Insert(k, Row(k)).ok());
  ASSERT_TRUE(db_->CompactUntilStable().ok());

  // Old version must still exist physically: scan the version for key 1's
  // versions at or below the pinned sequence.
  auto version = db_->current_version();
  bool found_old = false;
  for (int level = 0; level < version->num_levels(); ++level) {
    for (int group = 0; group < version->num_groups(level); ++group) {
      for (const auto& file : version->files(level, group)) {
        auto iter = file->reader->NewIterator();
        for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
          if (DecodeKey64(ExtractUserKey(iter->key())) == 1 &&
              ExtractSequence(iter->key()) <= pinned) {
            found_old = true;
          }
        }
      }
    }
  }
  EXPECT_TRUE(found_old);

  // Releasing the snapshot allows future compactions to drop it.
  snapshot.reset();
  ASSERT_TRUE(db_->CompactUntilStable().ok());
}

TEST_F(LaserDbAdvancedTest, ObsoleteFilesAreDeletedFromDisk) {
  for (uint64_t k = 0; k < 3000; ++k) ASSERT_TRUE(db_->Insert(k, Row(k)).ok());
  ASSERT_TRUE(db_->CompactUntilStable().ok());

  // Every .sst in the directory must be referenced by the current version.
  std::vector<std::string> children;
  ASSERT_TRUE(env_->GetChildren("/adv", &children).ok());
  std::set<std::string> on_disk;
  for (const auto& name : children) {
    if (name.size() > 4 && name.substr(name.size() - 4) == ".sst") {
      on_disk.insert(name);
    }
  }
  auto version = db_->current_version();
  std::set<std::string> referenced;
  for (int level = 0; level < version->num_levels(); ++level) {
    for (int group = 0; group < version->num_groups(level); ++group) {
      for (const auto& f : version->files(level, group)) {
        referenced.insert(SstFileName(f->file_number));
      }
    }
  }
  EXPECT_EQ(on_disk, referenced);
  EXPECT_FALSE(on_disk.empty());
}

TEST_F(LaserDbAdvancedTest, WriteStallsAreRecordedUnderLoad) {
  LaserOptions options = MakeOptions();
  options.level0_stop_writes_trigger = 5;
  options.level0_file_compaction_trigger = 4;
  options.background_threads = 1;
  Reopen(options);
  for (uint64_t k = 0; k < 20000; ++k) {
    ASSERT_TRUE(db_->Insert(k, Row(k)).ok());
  }
  db_->WaitForBackgroundWork();
  // With a tiny stop trigger and one background thread, some stall must
  // have occurred (this is the §7.2 insert-throughput backpressure).
  EXPECT_GT(db_->stats().write_stall_micros.load() +
                db_->stats().compaction_jobs.load(),
            0u);
}

TEST_F(LaserDbAdvancedTest, ConcurrentReadersWhileWriting) {
  std::atomic<bool> stop{false};
  std::atomic<int> read_errors{0};
  std::atomic<uint64_t> write_done{0};

  std::thread writer([&] {
    for (uint64_t k = 0; k < 20000; ++k) {
      if (!db_->Insert(k, Row(k)).ok()) break;
      write_done.store(k + 1, std::memory_order_release);
    }
    stop.store(true);
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      Random rng(t + 1);
      while (!stop.load(std::memory_order_acquire)) {
        const uint64_t upper = write_done.load(std::memory_order_acquire);
        if (upper == 0) continue;
        const uint64_t key = rng.Uniform(upper);
        LaserDB::ReadResult result;
        if (!db_->Read(key, {1, kColumns}, &result).ok() || !result.found ||
            *result.values[0] != key * 100 + 1) {
          ++read_errors;
        }
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(read_errors.load(), 0);
  db_->WaitForBackgroundWork();
}

TEST_F(LaserDbAdvancedTest, ConcurrentScansWhileWriting) {
  for (uint64_t k = 0; k < 2000; ++k) ASSERT_TRUE(db_->Insert(k, Row(k)).ok());
  std::atomic<bool> stop{false};
  std::atomic<int> scan_errors{0};

  std::thread scanner([&] {
    while (!stop.load()) {
      auto scan = db_->NewScan(100, 300, {2});
      uint64_t prev = 0;
      bool first = true;
      for (; scan->Valid(); scan->Next()) {
        if (!first && scan->key() <= prev) ++scan_errors;  // must be sorted
        prev = scan->key();
        first = false;
      }
      if (!scan->status().ok()) ++scan_errors;
    }
  });
  for (uint64_t k = 2000; k < 12000; ++k) {
    ASSERT_TRUE(db_->Insert(k, Row(k)).ok());
  }
  stop.store(true);
  scanner.join();
  EXPECT_EQ(scan_errors.load(), 0);
}

TEST_F(LaserDbAdvancedTest, ScanIsolatedFromConcurrentDeletes) {
  for (uint64_t k = 0; k < 500; ++k) ASSERT_TRUE(db_->Insert(k, Row(k)).ok());
  auto scan = db_->NewScan(0, 499, {1});
  // Delete everything after the scan snapshot was taken.
  for (uint64_t k = 0; k < 500; ++k) ASSERT_TRUE(db_->Delete(k).ok());
  uint64_t rows = 0;
  for (; scan->Valid(); scan->Next()) ++rows;
  EXPECT_EQ(rows, 500u);  // the pinned snapshot still sees all rows
}

TEST_F(LaserDbAdvancedTest, ManyReopenCyclesPreserveData) {
  for (int cycle = 0; cycle < 5; ++cycle) {
    for (uint64_t k = cycle * 100; k < (cycle + 1) * 100u; ++k) {
      ASSERT_TRUE(db_->Insert(k, Row(k)).ok());
    }
    Reopen();
    for (uint64_t k = 0; k < (cycle + 1) * 100u; k += 37) {
      LaserDB::ReadResult result;
      ASSERT_TRUE(db_->Read(k, {1}, &result).ok());
      ASSERT_TRUE(result.found) << "cycle " << cycle << " key " << k;
    }
  }
}

TEST_F(LaserDbAdvancedTest, TornWalTailRecoversPrefix) {
  for (uint64_t k = 0; k < 50; ++k) ASSERT_TRUE(db_->Insert(k, Row(k)).ok());
  db_.reset();

  // Truncate the newest WAL mid-record.
  std::vector<std::string> children;
  ASSERT_TRUE(env_->GetChildren("/adv", &children).ok());
  std::string wal_name;
  for (const auto& name : children) {
    if (name.size() > 4 && name.substr(name.size() - 4) == ".wal") {
      if (name > wal_name) wal_name = name;
    }
  }
  ASSERT_FALSE(wal_name.empty());
  std::string contents;
  ASSERT_TRUE(env_->ReadFileToString("/adv/" + wal_name, &contents).ok());
  ASSERT_GT(contents.size(), 10u);
  ASSERT_TRUE(env_->WriteStringToFile(
                      Slice(contents.data(), contents.size() - 7),
                      "/adv/" + wal_name)
                  .ok());

  Reopen();
  // All but at most the torn record must be readable.
  int found = 0;
  for (uint64_t k = 0; k < 50; ++k) {
    LaserDB::ReadResult result;
    ASSERT_TRUE(db_->Read(k, {1}, &result).ok());
    if (result.found) ++found;
  }
  EXPECT_GE(found, 48);
}

TEST_F(LaserDbAdvancedTest, CorruptManifestFailsOpenLoudly) {
  for (uint64_t k = 0; k < 2000; ++k) ASSERT_TRUE(db_->Insert(k, Row(k)).ok());
  ASSERT_TRUE(db_->Flush().ok());
  db_.reset();

  std::string manifest;
  ASSERT_TRUE(env_->ReadFileToString("/adv/MANIFEST", &manifest).ok());
  manifest[manifest.size() / 3] ^= 0x10;
  ASSERT_TRUE(env_->WriteStringToFile(Slice(manifest), "/adv/MANIFEST").ok());

  std::unique_ptr<LaserDB> db;
  Status s = LaserDB::Open(MakeOptions(), &db);
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST_F(LaserDbAdvancedTest, CompactionPrioritiesBothConverge) {
  for (CompactionPriority priority :
       {CompactionPriority::kByCompensatedSize,
        CompactionPriority::kOldestSmallestSeqFirst}) {
    LaserOptions options = MakeOptions();
    options.path = priority == CompactionPriority::kByCompensatedSize
                       ? "/adv_size"
                       : "/adv_time";
    options.compaction_priority = priority;
    std::unique_ptr<LaserDB> db;
    ASSERT_TRUE(LaserDB::Open(options, &db).ok());
    for (uint64_t k = 0; k < 4000; ++k) {
      ASSERT_TRUE(db->Insert(k * 13 % 5000, Row(k)).ok());
    }
    ASSERT_TRUE(db->CompactUntilStable().ok());
    LaserDB::ReadResult result;
    ASSERT_TRUE(db->Read(13 % 5000, {1}, &result).ok());
    EXPECT_TRUE(result.found);
  }
}

TEST_F(LaserDbAdvancedTest, WalDisabledStillWorksUntilClose) {
  LaserOptions options = MakeOptions();
  options.use_wal = false;
  options.path = "/adv_nowal";
  std::unique_ptr<LaserDB> db;
  ASSERT_TRUE(LaserDB::Open(options, &db).ok());
  for (uint64_t k = 0; k < 500; ++k) ASSERT_TRUE(db->Insert(k, Row(k)).ok());
  ASSERT_TRUE(db->Flush().ok());  // persist via flush instead of WAL
  db.reset();
  ASSERT_TRUE(LaserDB::Open(options, &db).ok());
  LaserDB::ReadResult result;
  ASSERT_TRUE(db->Read(499, {1}, &result).ok());
  EXPECT_TRUE(result.found);
}

TEST_F(LaserDbAdvancedTest, SyncWalSurvivesReopen) {
  int variant = 0;
  for (WalSyncPolicy policy :
       {WalSyncPolicy::kSyncEveryWrite, WalSyncPolicy::kSyncEveryGroup}) {
    LaserOptions options = MakeOptions();
    options.wal_sync_policy = policy;
    options.path = "/adv_sync" + std::to_string(variant++);
    std::unique_ptr<LaserDB> db;
    ASSERT_TRUE(LaserDB::Open(options, &db).ok());
    ASSERT_TRUE(db->Insert(1, Row(1)).ok());
    db.reset();
    ASSERT_TRUE(LaserDB::Open(options, &db).ok());
    LaserDB::ReadResult result;
    ASSERT_TRUE(db->Read(1, {1}, &result).ok());
    EXPECT_TRUE(result.found);
  }
}

TEST_F(LaserDbAdvancedTest, PosixEnvEndToEnd) {
  LaserOptions options = MakeOptions();
  options.env = Env::Default();
  options.path = ::testing::TempDir() + "laser_posix_test";
  options.env->RemoveDir(options.path);
  {
    std::unique_ptr<LaserDB> db;
    ASSERT_TRUE(LaserDB::Open(options, &db).ok());
    for (uint64_t k = 0; k < 3000; ++k) ASSERT_TRUE(db->Insert(k, Row(k)).ok());
    ASSERT_TRUE(db->Update(100, {{2, 42}}).ok());
    ASSERT_TRUE(db->CompactUntilStable().ok());
  }
  {
    std::unique_ptr<LaserDB> db;
    ASSERT_TRUE(LaserDB::Open(options, &db).ok());
    LaserDB::ReadResult result;
    ASSERT_TRUE(db->Read(100, {1, 2}, &result).ok());
    ASSERT_TRUE(result.found);
    EXPECT_EQ(*result.values[0], 100u * 100 + 1);
    EXPECT_EQ(*result.values[1], 42u);
    uint64_t rows = 0;
    auto scan = db->NewScan(0, 5000, {kColumns});
    for (; scan->Valid(); scan->Next()) ++rows;
    EXPECT_EQ(rows, 3000u);
  }
  options.env->RemoveDir(options.path);
}

TEST_F(LaserDbAdvancedTest, LargeValuesAcrossBlocks) {
  // A 100-column schema makes each row span a noticeable chunk of a block.
  LaserOptions options = MakeOptions();
  options.path = "/adv_wide";
  options.schema = Schema::UniformInt32(100);
  options.cg_config = CgConfig::EquiWidth(100, kLevels, 10);
  std::unique_ptr<LaserDB> db;
  ASSERT_TRUE(LaserDB::Open(options, &db).ok());
  std::vector<ColumnValue> row(100);
  for (int c = 0; c < 100; ++c) row[c] = c + 1;
  for (uint64_t k = 0; k < 500; ++k) ASSERT_TRUE(db->Insert(k, row).ok());
  ASSERT_TRUE(db->CompactUntilStable().ok());
  LaserDB::ReadResult result;
  ASSERT_TRUE(db->Read(250, {55}, &result).ok());
  ASSERT_TRUE(result.found);
  EXPECT_EQ(*result.values[0], 55u);
}

TEST_F(LaserDbAdvancedTest, StatsAccumulateAcrossOperations) {
  for (uint64_t k = 0; k < 2000; ++k) ASSERT_TRUE(db_->Insert(k, Row(k)).ok());
  ASSERT_TRUE(db_->CompactUntilStable().ok());
  EXPECT_GT(db_->stats().flush_jobs.load(), 0u);
  EXPECT_GT(db_->stats().compaction_jobs.load(), 0u);
  EXPECT_GT(db_->stats().bytes_flushed.load(), 0u);
  EXPECT_GT(db_->stats().bytes_compacted.load(), 0u);
  EXPECT_GT(db_->stats().bytes_written_wal.load(), 0u);
  const std::string rendered = db_->stats().ToString();
  EXPECT_NE(rendered.find("compactions="), std::string::npos);
}

TEST_F(LaserDbAdvancedTest, EmptyDatabaseBehaves) {
  LaserDB::ReadResult result;
  ASSERT_TRUE(db_->Read(1, {1}, &result).ok());
  EXPECT_FALSE(result.found);
  auto scan = db_->NewScan(0, 100, {1});
  ASSERT_NE(scan, nullptr);
  EXPECT_FALSE(scan->Valid());
  ASSERT_TRUE(db_->Flush().ok());
  ASSERT_TRUE(db_->CompactUntilStable().ok());
  EXPECT_EQ(db_->LastSequence(), 0u);
}

TEST_F(LaserDbAdvancedTest, OnlineTraceCollectionFeedsAdvisor) {
  for (uint64_t k = 0; k < 3000; ++k) ASSERT_TRUE(db_->Insert(k, Row(k)).ok());
  ASSERT_TRUE(db_->CompactUntilStable().ok());

  WorkloadTrace trace(kLevels);
  db_->SetTraceCollector(&trace);

  // Profiled phase: inserts, updates, reads, one scan.
  for (uint64_t k = 3000; k < 3100; ++k) {
    ASSERT_TRUE(db_->Insert(k, Row(k)).ok());
  }
  ASSERT_TRUE(db_->Update(5, {{2, 9}}).ok());
  LaserDB::ReadResult result;
  for (uint64_t k = 0; k < 50; ++k) {
    ASSERT_TRUE(db_->Read(k, {1, 2}, &result).ok());
  }
  ASSERT_TRUE(db_->Read(3050, MakeColumnRange(1, kColumns), &result).ok());
  {
    auto scan = db_->NewScan(0, 500, {3});
    uint64_t rows = 0;
    for (; scan->Valid(); scan->Next()) ++rows;
    EXPECT_EQ(rows, 501u);
  }  // scan reported on destruction
  db_->SetTraceCollector(nullptr);

  EXPECT_EQ(trace.inserts(), 100u);
  EXPECT_EQ(trace.updates().at({2}), 1u);
  const auto reads = trace.point_reads();
  ASSERT_TRUE(reads.count({1, 2}));
  // Old keys resolved in deep levels; the fresh key resolved in level 0.
  uint64_t deep = 0;
  for (size_t level = 1; level < reads.at({1, 2}).size(); ++level) {
    deep += reads.at({1, 2})[level];
  }
  EXPECT_GT(deep, 0u);
  ASSERT_TRUE(reads.count(MakeColumnRange(1, kColumns)));
  EXPECT_GT(reads.at(MakeColumnRange(1, kColumns))[0], 0u);
  const auto scans = trace.range_scans();
  ASSERT_TRUE(scans.count({3}));
  EXPECT_EQ(scans.at({3}).count, 1u);
  EXPECT_NEAR(scans.at({3}).total_selected, 501.0, 0.01);
}

TEST_F(LaserDbAdvancedTest, DeleteNonexistentThenInsert) {
  ASSERT_TRUE(db_->Delete(77).ok());
  ASSERT_TRUE(db_->Insert(77, Row(77)).ok());
  LaserDB::ReadResult result;
  ASSERT_TRUE(db_->Read(77, {1}, &result).ok());
  ASSERT_TRUE(result.found);
  ASSERT_TRUE(db_->CompactUntilStable().ok());
  ASSERT_TRUE(db_->Read(77, {1}, &result).ok());
  EXPECT_TRUE(result.found);
}

}  // namespace
}  // namespace laser
