// Sharded BlockCache tests: LRU semantics and charge accounting per shard,
// file-wide eviction across shards, and a multi-threaded stress run (the
// TSan CI job executes this suite) hammering lookups/inserts/erases from
// concurrent threads the way parallel scans and compaction sweeps do.

#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "sst/block_cache.h"
#include "util/random.h"

namespace laser {
namespace {

/// A block-shaped payload: contents only need size() for the cache.
std::shared_ptr<Block> MakeBlock(size_t payload_bytes) {
  return std::make_shared<Block>(std::string(payload_bytes, 'x'));
}

TEST(BlockCacheTest, InsertLookupRoundTrip) {
  BlockCache cache(1 << 20, 4);
  EXPECT_EQ(cache.num_shards(), 4);
  EXPECT_EQ(cache.Lookup(1, 0), nullptr);

  auto block = MakeBlock(100);
  cache.Insert(1, 0, block);
  EXPECT_EQ(cache.Lookup(1, 0).get(), block.get());
  EXPECT_EQ(cache.Lookup(1, 4096), nullptr);
  EXPECT_EQ(cache.Lookup(2, 0), nullptr);
  EXPECT_GT(cache.charge(), 100u);
}

TEST(BlockCacheTest, ReplaceExistingKeyAdjustsCharge) {
  BlockCache cache(1 << 20, 1);
  cache.Insert(1, 0, MakeBlock(1000));
  const size_t charge_before = cache.charge();
  cache.Insert(1, 0, MakeBlock(10));
  EXPECT_LT(cache.charge(), charge_before);
  EXPECT_NE(cache.Lookup(1, 0), nullptr);
}

TEST(BlockCacheTest, EvictsLeastRecentlyUsedWithinCapacity) {
  // Single shard so LRU order is fully deterministic.
  BlockCache cache(4096, 1);
  cache.Insert(1, 0, MakeBlock(1500));
  cache.Insert(1, 1, MakeBlock(1500));
  ASSERT_NE(cache.Lookup(1, 0), nullptr);  // touch: (1,1) is now the LRU
  cache.Insert(1, 2, MakeBlock(1500));     // overflows: evicts (1,1)
  EXPECT_NE(cache.Lookup(1, 0), nullptr);
  EXPECT_EQ(cache.Lookup(1, 1), nullptr);
  EXPECT_NE(cache.Lookup(1, 2), nullptr);
  EXPECT_LE(cache.charge(), cache.capacity());
}

TEST(BlockCacheTest, EraseFileDropsEveryShardEntry) {
  BlockCache cache(1 << 20, 8);
  // Offsets spread across shards by hash.
  for (uint64_t offset = 0; offset < 64; ++offset) {
    cache.Insert(7, offset * 4096, MakeBlock(64));
    cache.Insert(8, offset * 4096, MakeBlock(64));
  }
  cache.EraseFile(7);
  for (uint64_t offset = 0; offset < 64; ++offset) {
    EXPECT_EQ(cache.Lookup(7, offset * 4096), nullptr);
    EXPECT_NE(cache.Lookup(8, offset * 4096), nullptr);
  }
}

TEST(BlockCacheTest, ShardCountRoundsUpAndClampsForTinyCaches) {
  EXPECT_EQ(BlockCache(1 << 20, 5).num_shards(), 8);   // rounds up to 2^k
  EXPECT_EQ(BlockCache(1 << 20, 0).num_shards(), 16);  // default
  // A 64KB cache must not shatter into sub-64KB shards.
  EXPECT_EQ(BlockCache(64 * 1024, 16).num_shards(), 1);
  EXPECT_EQ(BlockCache(256 * 1024, 16).num_shards(), 4);
}

// Regression (shard clamp edges): shards=1 must stay 1 (not round to 0 or
// 2), capacity=0 must degrade to a single shard instead of dividing by
// zero, a negative request falls back to the default, and an absurd request
// cannot allocate a shard struct per power of two up to INT_MAX.
TEST(BlockCacheTest, ShardClampEdges) {
  EXPECT_EQ(BlockCache(1 << 20, 1).num_shards(), 1);
  EXPECT_EQ(BlockCache(0, 16).num_shards(), 1);
  EXPECT_EQ(BlockCache(0, 0).num_shards(), 1);
  EXPECT_EQ(BlockCache(1, 1).num_shards(), 1);
  EXPECT_EQ(BlockCache(1 << 20, -3).num_shards(), 16);  // default fallback
  EXPECT_LE(BlockCache(std::numeric_limits<size_t>::max(),
                       std::numeric_limits<int>::max())
                .num_shards(),
            static_cast<int>(BlockCache::kMaxShards));

  // A zero-capacity cache is a valid (always-miss) cache: inserts evict
  // immediately, lookups and charge accounting stay safe.
  BlockCache zero(0, 4);
  zero.Insert(1, 0, MakeBlock(64));
  EXPECT_EQ(zero.Lookup(1, 0), nullptr);
  EXPECT_EQ(zero.charge(), 0u);

  // A sub-64KB single-shard cache still caches.
  BlockCache tiny(32 * 1024, 8);
  EXPECT_EQ(tiny.num_shards(), 1);
  tiny.Insert(1, 0, MakeBlock(64));
  EXPECT_NE(tiny.Lookup(1, 0), nullptr);
}

TEST(BlockCacheTest, ChargeNeverExceedsCapacityUnderPressure) {
  BlockCache cache(64 * 1024, 2);
  Random rng(42);
  for (int i = 0; i < 2000; ++i) {
    cache.Insert(rng.Uniform(4), rng.Uniform(256) * 4096, MakeBlock(1024));
    EXPECT_LE(cache.charge(), cache.capacity());
  }
}

// The concurrency surface: parallel scan threads (Lookup/Insert), the
// obsolete-file sweeper (EraseFile), and charge polling all race on the
// same cache. Run under TSan in CI; assertions here double as a sanity
// check of LRU/charge invariants under contention.
TEST(BlockCacheTest, MultiThreadedStress) {
  BlockCache cache(512 * 1024, 8);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> misses{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Random rng(1000 + t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const uint64_t file = rng.Uniform(6);
        const uint64_t offset = rng.Uniform(128) * 4096;
        const uint32_t kind = rng.Uniform(100);
        if (kind < 60) {
          auto found = cache.Lookup(file, offset);
          if (found != nullptr) {
            hits.fetch_add(1, std::memory_order_relaxed);
            // The returned block must stay usable even if racing threads
            // evict it from the cache right now.
            EXPECT_EQ(found->size(), 512u);
          } else {
            misses.fetch_add(1, std::memory_order_relaxed);
          }
        } else if (kind < 95) {
          cache.Insert(file, offset, MakeBlock(512));
        } else if (kind < 98) {
          cache.EraseFile(file);
        } else {
          EXPECT_LE(cache.charge(), cache.capacity());
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_LE(cache.charge(), cache.capacity());
  EXPECT_GT(hits.load() + misses.load(), 0u);
}

}  // namespace
}  // namespace laser
