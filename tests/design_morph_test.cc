// In-flight design morphing, end to end: (1) differential scan correctness
// against a reference model while the tree is mid-morph at every level —
// each staged target leaves the tree genuinely mixed (shallow levels row,
// deep levels columnar), which is exactly the layout every read path must
// tolerate; (2) a crash matrix over the morph phase — killed at every
// filesystem operation from SetTargetDesign through convergence, the
// reopened tree must hold exactly the acknowledged writes AND keep
// converging to the persisted target instead of reverting; (3) the advisor
// daemon's hysteresis, driven deterministically through TickOnce.

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <vector>

#include "cost/design_advisor_daemon.h"
#include "cost/trace.h"
#include "laser/laser_db.h"
#include "tests/recovery_harness.h"
#include "tests/test_util.h"
#include "util/env_fault.h"

namespace laser {
namespace {

// ---------------------------------------------------------------------------
// Differential scans across staged morphs.
// ---------------------------------------------------------------------------

constexpr int kColumns = 6;
constexpr int kLevels = 4;
constexpr uint64_t kKeySpace = 700;

// column id -> value; a key absent from the model is deleted/never written.
using ModelRow = std::map<int, uint64_t>;
using Model = std::map<uint64_t, ModelRow>;

struct ResultRow {
  uint64_t key = 0;
  std::vector<std::optional<ColumnValue>> values;

  bool operator==(const ResultRow&) const = default;
};

std::vector<ResultRow> ModelScan(const Model& model, uint64_t lo, uint64_t hi,
                                 const ColumnSet& projection) {
  std::vector<ResultRow> out;
  for (auto it = model.lower_bound(lo); it != model.end() && it->first <= hi;
       ++it) {
    ResultRow row;
    row.key = it->first;
    bool any = false;
    for (const int column : projection) {
      auto v = it->second.find(column);
      if (v != it->second.end()) {
        row.values.emplace_back(v->second);
        any = true;
      } else {
        row.values.emplace_back(std::nullopt);
      }
    }
    if (any) out.push_back(std::move(row));
  }
  return out;
}

std::vector<ResultRow> FilterRows(std::vector<ResultRow> rows,
                                  const ColumnSet& projection,
                                  const ScanSpec& spec) {
  std::vector<ResultRow> out;
  for (auto& row : rows) {
    bool keep = true;
    for (const ScanPredicate& pred : spec.predicates) {
      const auto pos =
          std::find(projection.begin(), projection.end(), pred.column);
      const auto& value = row.values[pos - projection.begin()];
      if (!value.has_value() || !PredicateMatches(pred, *value)) {
        keep = false;
        break;
      }
    }
    if (keep) out.push_back(std::move(row));
  }
  return out;
}

std::vector<ResultRow> RowApiScan(LaserDB* db, uint64_t lo, uint64_t hi,
                                  const ColumnSet& projection,
                                  const ScanSpec& spec = {}) {
  std::vector<ResultRow> out;
  auto scan = db->NewScan(lo, hi, projection, spec);
  EXPECT_NE(scan, nullptr);
  if (scan == nullptr) return out;
  for (; scan->Valid(); scan->Next()) {
    out.push_back(ResultRow{scan->key(), scan->values()});
  }
  EXPECT_TRUE(scan->status().ok());
  return out;
}

std::vector<ResultRow> BatchApiScan(LaserDB* db, uint64_t lo, uint64_t hi,
                                    const ColumnSet& projection,
                                    size_t batch_rows,
                                    const ScanSpec& spec = {}) {
  std::vector<ResultRow> out;
  auto scan = db->NewScan(lo, hi, projection, spec);
  EXPECT_NE(scan, nullptr);
  if (scan == nullptr) return out;
  ScanBatch batch;
  while (size_t n = scan->NextBatch(&batch, batch_rows)) {
    for (size_t i = 0; i < n; ++i) {
      ResultRow row;
      row.key = batch.keys[i];
      for (size_t c = 0; c < projection.size(); ++c) {
        if (batch.columns[c].present[i]) {
          row.values.emplace_back(batch.columns[c].values[i]);
        } else {
          row.values.emplace_back(std::nullopt);
        }
      }
      out.push_back(std::move(row));
    }
  }
  EXPECT_TRUE(scan->status().ok());
  return out;
}

class MidMorphScanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = NewMemEnv();
    LaserOptions options =
        test::TinyTreeOptions(env_.get(), "/db", kColumns, kLevels);
    options.cg_config = CgConfig::RowOnly(kColumns, kLevels);
    options.use_wal = false;
    options.background_threads = 1;
    options.disable_auto_compactions = true;
    ASSERT_TRUE(LaserDB::Open(options, &db_).ok());

    // Inserts, partial updates, deletes — enough rows that the tiny tree
    // spreads files over several levels before the morph stages begin.
    for (uint64_t key = 1; key <= kKeySpace; ++key) {
      ASSERT_TRUE(db_->Insert(key, test::TestRow(key, kColumns)).ok());
      ModelRow& row = model_[key];
      for (int c = 1; c <= kColumns; ++c) {
        row[c] = key * 100 + static_cast<uint64_t>(c);
      }
    }
    for (uint64_t key = 3; key <= kKeySpace; key += 3) {
      ASSERT_TRUE(db_->Update(key, {{2, key * 1000 + 2}}).ok());
      model_[key][2] = key * 1000 + 2;
    }
    for (uint64_t key = 7; key <= kKeySpace; key += 7) {
      ASSERT_TRUE(db_->Delete(key).ok());
      model_.erase(key);
    }
    ASSERT_TRUE(db_->Flush().ok());
    ASSERT_TRUE(db_->CompactUntilStable().ok());
  }

  /// Every read path against the reference model: full / narrow / single
  /// projections, row and batch consumers (batch sizes straddling runs),
  /// pushed-down predicates, and point reads over the whole key universe.
  void VerifyAllReadPaths() {
    const ColumnSet full = MakeColumnRange(1, kColumns);
    for (const ColumnSet& projection :
         std::vector<ColumnSet>{full, {2, 5}, {4}}) {
      const auto expected = ModelScan(model_, 1, kKeySpace, projection);
      EXPECT_EQ(RowApiScan(db_.get(), 1, kKeySpace, projection), expected);
      for (const size_t batch_rows : {size_t{1}, size_t{7}, size_t{128}}) {
        EXPECT_EQ(
            BatchApiScan(db_.get(), 1, kKeySpace, projection, batch_rows),
            expected);
      }
      // Selective pushdown on the projection's first column.
      ScanSpec spec;
      spec.predicates.push_back(
          {projection[0], PredOp::kGe, kKeySpace * 50, 0});
      const auto filtered = FilterRows(expected, projection, spec);
      EXPECT_EQ(RowApiScan(db_.get(), 1, kKeySpace, projection, spec),
                filtered);
      EXPECT_EQ(BatchApiScan(db_.get(), 1, kKeySpace, projection, 64, spec),
                filtered);
    }
    for (uint64_t key = 1; key <= kKeySpace; ++key) {
      LaserDB::ReadResult result;
      ASSERT_TRUE(db_->Read(key, full, &result).ok()) << "key " << key;
      auto it = model_.find(key);
      ASSERT_EQ(result.found, it != model_.end()) << "key " << key;
      if (!result.found) continue;
      for (int c = 1; c <= kColumns; ++c) {
        // A resurrected key (update after delete) holds only the updated
        // columns; absent model columns must read back as null.
        auto v = it->second.find(c);
        const std::optional<ColumnValue> want =
            v != it->second.end() ? std::optional<ColumnValue>(v->second)
                                  : std::nullopt;
        ASSERT_EQ(result.values[c - 1], want)
            << "key " << key << " column " << c;
      }
    }
  }

  std::unique_ptr<Env> env_;
  std::unique_ptr<LaserDB> db_;
  Model model_;
};

TEST_F(MidMorphScanTest, ScansExactWithTreeMixedAtEveryLevel) {
  const CgConfig row = CgConfig::RowOnly(kColumns, kLevels);
  const CgConfig columnar = CgConfig::ColumnOnly(kColumns, kLevels);

  // Converge bottom-up through staged targets: stage k leaves levels
  // [k, kLevels) columnar and everything above row — a valid design (CG
  // containment holds when groups only narrow with depth) that is exactly
  // the mixed layout an in-flight morph passes through. Each stage re-lays
  // one more level, so every mixed state gets the full differential sweep.
  VerifyAllReadPaths();  // pre-morph baseline
  for (int k = kLevels - 1; k >= 1; --k) {
    CgConfig stage = row;
    for (int level = k; level < kLevels; ++level) {
      stage.SetLevelGroups(level, columnar.groups(level));
    }
    const uint64_t morphs_before = db_->stats().design_morphs_completed.load();
    ASSERT_TRUE(db_->SetTargetDesign(stage).ok()) << "stage " << k;
    ASSERT_TRUE(db_->CompactUntilStable().ok()) << "stage " << k;
    EXPECT_EQ(db_->CurrentDesign(), stage) << "stage " << k;
    EXPECT_EQ(db_->TargetDesign().num_levels(), 0) << "stage " << k;
    EXPECT_EQ(db_->stats().design_morphs_completed.load(), morphs_before + 1);
    VerifyAllReadPaths();
  }
  EXPECT_EQ(db_->CurrentDesign(), columnar);
  EXPECT_GE(db_->stats().design_morph_compactions.load(),
            static_cast<uint64_t>(kLevels - 1));

  // Writes keep working on the converged tree, and a morph straight back to
  // row (one target, all levels mismatched at once) stays exact too.
  for (uint64_t key = 1; key <= 8; ++key) {
    ASSERT_TRUE(db_->Update(key, {{5, key * 9000 + 5}}).ok());
    model_[key][5] = key * 9000 + 5;
  }
  ASSERT_TRUE(db_->Flush().ok());
  ASSERT_TRUE(db_->SetTargetDesign(row).ok());
  ASSERT_TRUE(db_->CompactUntilStable().ok());
  EXPECT_EQ(db_->CurrentDesign(), row);
  VerifyAllReadPaths();
}

// ---------------------------------------------------------------------------
// Morph-resume crash matrix.
// ---------------------------------------------------------------------------

// Scripted workload for the crash matrix: build a compacted row-format tree,
// then morph it to pure columnar with a trailing write burst. Uses the
// recovery harness's 4-column schema so its model verifiers apply.
struct MorphScriptOutcome {
  test::Model model;        // acknowledged state
  bool target_acked = false;  // SetTargetDesign returned OK
  bool completed = false;
  uint64_t morph_begin = 0;  // op index where the morph phase starts
};

class MorphCrashHarness {
 public:
  static constexpr int kCols = test::RecoveryHarness::kColumns;
  static constexpr int kLvls = 4;

  MorphCrashHarness() : base_(NewMemEnv()), fault_(base_.get()) {}

  FaultInjectionEnv* fault_env() { return &fault_; }

  static CgConfig InitialDesign() { return CgConfig::RowOnly(kCols, kLvls); }
  static CgConfig TargetDesign() { return CgConfig::ColumnOnly(kCols, kLvls); }

  Status Open(std::unique_ptr<LaserDB>* db) {
    LaserOptions options;
    options.env = &fault_;
    options.path = "/db";
    options.schema = Schema::UniformInt32(kCols);
    options.num_levels = kLvls;
    options.size_ratio = 2;
    options.cg_config = InitialDesign();
    options.write_buffer_size = 1 << 20;  // rotates only on explicit Flush
    options.level0_bytes = 2 * 1024;
    options.level0_file_compaction_trigger = 2;
    options.target_sst_size = 2 * 1024;
    options.block_size = 1024;
    options.background_threads = 1;
    options.disable_auto_compactions = true;
    options.wal_sync_policy = WalSyncPolicy::kSyncEveryWrite;  // acked==durable
    return LaserDB::Open(options, db);
  }

  MorphScriptOutcome RunScript(LaserDB* db) {
    MorphScriptOutcome out;
    auto insert = [&](uint64_t key) {
      if (!db->Insert(key, test::TestRow(key, kCols)).ok()) return false;
      test::RowState row(kCols);
      for (int c = 1; c <= kCols; ++c) row[c - 1] = key * 100 + c;
      out.model[key] = std::move(row);
      return true;
    };

    // Build phase: two flushed batches plus a compaction, so the morph has a
    // multi-level row tree to convert.
    for (uint64_t key = 1; key <= 24; ++key) {
      if (!insert(key)) return out;
    }
    if (!db->Flush().ok()) return out;
    for (uint64_t key = 25; key <= 40; ++key) {
      if (!insert(key)) return out;
    }
    if (!db->Update(5, {{2, 5002}}).ok()) return out;
    out.model[5][1] = 5002;
    if (!db->Delete(40).ok()) return out;
    out.model.erase(40);
    if (!db->Flush().ok()) return out;
    if (!db->CompactUntilStable().ok()) return out;

    // Morph phase: target install (manifest write) + per-level re-layouts
    // (compaction outputs, manifest installs, obsolete-file deletes).
    out.morph_begin = fault_.mutating_ops();
    if (!db->SetTargetDesign(TargetDesign()).ok()) return out;
    out.target_acked = true;
    if (!db->CompactUntilStable().ok()) return out;

    // Writes on top of the morphed tree.
    for (uint64_t key = 41; key <= 48; ++key) {
      if (!insert(key)) return out;
    }
    out.completed = true;
    return out;
  }

 private:
  std::unique_ptr<Env> base_;
  FaultInjectionEnv fault_;
};

TEST(MorphCrashMatrixTest, CrashAtEveryOperationOfTheMorphResumes) {
  // Profiling run: no faults; the script must complete and morph exactly once.
  uint64_t total_ops = 0;
  uint64_t morph_begin = 0;
  test::Model final_model;
  {
    MorphCrashHarness harness;
    std::unique_ptr<LaserDB> db;
    ASSERT_TRUE(harness.Open(&db).ok());
    MorphScriptOutcome baseline = harness.RunScript(db.get());
    ASSERT_TRUE(baseline.completed);
    EXPECT_EQ(db->CurrentDesign(), MorphCrashHarness::TargetDesign());
    EXPECT_EQ(db->stats().design_morphs_completed.load(), 1u);
    EXPECT_GE(db->stats().design_morph_compactions.load(), 1u);
    test::RecoveryHarness::VerifyMatchesModel(db.get(), baseline.model);
    total_ops = harness.fault_env()->mutating_ops();
    morph_begin = baseline.morph_begin;
    final_model = baseline.model;
  }
  ASSERT_GT(total_ops, morph_begin);
  ASSERT_GT(total_ops - morph_begin, 10u) << "morph phase produced too few "
                                             "filesystem ops to be a matrix";

  // Crash at every op of the morph phase. After reboot: exactly the
  // acknowledged data, a design invariant (every level laid out either as
  // the old or the target partition, never torn), and — when the target
  // install was acknowledged — CompactUntilStable must finish the morph the
  // crash interrupted.
  const CgConfig initial = MorphCrashHarness::InitialDesign();
  const CgConfig target = MorphCrashHarness::TargetDesign();
  for (uint64_t k = morph_begin; k < total_ops; ++k) {
    SCOPED_TRACE("crash after op " + std::to_string(k));
    MorphCrashHarness harness;
    harness.fault_env()->CrashAfterOps(k);

    MorphScriptOutcome outcome;
    {
      std::unique_ptr<LaserDB> db;
      if (harness.Open(&db).ok()) {
        outcome = harness.RunScript(db.get());
      }
    }
    EXPECT_FALSE(outcome.completed);

    harness.fault_env()->DropUnsyncedData();
    harness.fault_env()->ClearFaults();
    std::unique_ptr<LaserDB> db;
    ASSERT_TRUE(harness.Open(&db).ok());
    test::RecoveryHarness::VerifyMatchesModel(db.get(), outcome.model);

    const CgConfig recovered = db->CurrentDesign();
    for (int level = 0; level < MorphCrashHarness::kLvls; ++level) {
      EXPECT_TRUE(recovered.groups(level) == initial.groups(level) ||
                  recovered.groups(level) == target.groups(level))
          << "level " << level << " recovered mid-rewrite";
    }
    const CgConfig pending = db->TargetDesign();
    if (pending.num_levels() > 0) {
      EXPECT_EQ(pending, target) << "persisted target mutated across crash";
    }

    // Resume: the acknowledged target must win through to convergence.
    ASSERT_TRUE(db->CompactUntilStable().ok());
    if (outcome.target_acked) {
      EXPECT_EQ(db->CurrentDesign(), target) << "acked morph did not resume";
      EXPECT_EQ(db->TargetDesign().num_levels(), 0);
    }
    test::RecoveryHarness::VerifyMatchesModel(db.get(), outcome.model);
  }
}

// ---------------------------------------------------------------------------
// Advisor-daemon hysteresis (deterministic, via TickOnce).
// ---------------------------------------------------------------------------

class DaemonHysteresisTest : public ::testing::Test {
 protected:
  static constexpr int kCols = 8;
  static constexpr int kLvls = 4;

  DesignAdvisorDaemonOptions MakeOptions(double gain) const {
    DesignAdvisorDaemonOptions options;
    options.min_predicted_gain = gain;
    options.shape.num_levels = kLvls;
    options.shape.size_ratio = 2;
    options.shape.entries_per_block = 4096.0 / (16.0 + 4.0 * kCols);
    options.shape.blocks_level0 = 64;
    options.shape.num_columns = kCols;
    return options;
  }

  /// Scan-heavy trace over a narrow projection: the advisor will want to
  /// split <7-8> off, which beats pure-row by far more than any reasonable
  /// hysteresis margin.
  void FillScanHeavyTrace(WorkloadTrace* trace) const {
    trace->AddInsert(10000);
    for (int i = 0; i < 500; ++i) trace->AddRangeScan({7, 8}, 4000.0);
    trace->AddPointRead(MakeColumnRange(1, kCols), 1);
  }

  DesignAdvisorDaemon::Hooks MakeHooks() {
    DesignAdvisorDaemon::Hooks hooks;
    hooks.fill_trace = [this](WorkloadTrace* trace) { FillScanHeavyTrace(trace); };
    hooks.design_to_beat = [this]() {
      return target_.num_levels() > 0 ? target_ : committed_;
    };
    hooks.install = [this](const CgConfig& config) {
      target_ = config;
      return Status::OK();
    };
    return hooks;
  }

  Schema schema_ = Schema::UniformInt32(kCols);
  CgConfig committed_ = CgConfig::RowOnly(kCols, kLvls);
  CgConfig target_;  // in-flight morph target (empty = none)
};

TEST_F(DaemonHysteresisTest, InstallsOnceThenHoldsSteady) {
  DesignAdvisorDaemon daemon(&schema_, MakeOptions(0.10), MakeHooks());

  // First pass: the candidate beats row-only by more than 10% — installed.
  EXPECT_TRUE(daemon.TickOnce());
  EXPECT_EQ(daemon.installs(), 1u);
  ASSERT_GT(target_.num_levels(), 0);
  const CgConfig first_target = target_;

  // Same telemetry, morph still in flight: the candidate now scores equal to
  // the design to beat (the target itself), so no tick may re-install — this
  // is the hysteresis that keeps a converging morph from being thrashed.
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(daemon.TickOnce()) << "tick " << i;
  }
  EXPECT_EQ(daemon.installs(), 1u);
  EXPECT_EQ(target_, first_target);

  // Morph finishes (target becomes the committed design): still no churn.
  committed_ = target_;
  target_ = CgConfig();
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(daemon.TickOnce()) << "tick " << i;
  }
  EXPECT_EQ(daemon.installs(), 1u);
  EXPECT_EQ(daemon.ticks(), 11u);
}

TEST_F(DaemonHysteresisTest, GainThresholdBlocksMarginalWins) {
  // An absurd margin: nothing can be predicted to win by 99.9%, so even a
  // clearly better design must not be installed.
  DesignAdvisorDaemon daemon(&schema_, MakeOptions(0.999), MakeHooks());
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(daemon.TickOnce());
  }
  EXPECT_EQ(daemon.installs(), 0u);
  EXPECT_EQ(target_.num_levels(), 0);
}

TEST_F(DaemonHysteresisTest, ScoreDesignMatchesInstallDecision) {
  DesignAdvisorDaemon daemon(&schema_, MakeOptions(0.10), MakeHooks());
  WorkloadTrace trace(kLvls);
  FillScanHeavyTrace(&trace);

  ASSERT_TRUE(daemon.TickOnce());
  const double winner = daemon.ScoreDesign(target_, trace);
  const double row = daemon.ScoreDesign(CgConfig::RowOnly(kCols, kLvls), trace);
  EXPECT_LT(winner, row * (1.0 - 0.10))
      << "installed design does not clear the advertised margin";
}

}  // namespace
}  // namespace laser
