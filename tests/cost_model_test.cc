// Cost model tests (§5): Equation 1 level count, B_ji block capacity,
// Table 2 closed forms for the row/column special cases, monotonicity
// properties the figures rely on.

#include <gtest/gtest.h>

#include "cost/cost_model.h"

namespace laser {
namespace {

TEST(CostModelTest, Equation1LevelCount) {
  // N = B*pg*T^L*(T/(T-1)) entries need about L levels.
  EXPECT_EQ(ComputeNumLevels(40 * 1000, 40, 1000, 2), 1);
  const double n = 40 * 1000 * 16 * 2.0;  // T^4 * T/(T-1) with T=2
  EXPECT_EQ(ComputeNumLevels(n, 40, 1000, 2), 4);
  EXPECT_GT(ComputeNumLevels(4e8, 40, 16000, 2), 6);
}

class CostModelFixture : public ::testing::Test {
 protected:
  LsmShape Shape(int c = 30) {
    LsmShape shape;
    shape.num_levels = 8;
    shape.size_ratio = 2;
    shape.entries_per_block = 40;
    shape.blocks_level0 = 1000;
    shape.num_columns = c;
    return shape;
  }
};

TEST_F(CostModelFixture, EntriesPerBlockEquation3) {
  CgConfig row = CgConfig::RowOnly(30, 8);
  CostModel model(Shape(), &row);
  // Row layout: B_ji = B*(1+c)/(1+c) = B.
  EXPECT_DOUBLE_EQ(model.EntriesPerBlock(1, 0), 40.0);

  CgConfig col = CgConfig::ColumnOnly(30, 8);
  CostModel colmodel(Shape(), &col);
  // Column layout: B_ji = B*(1+c)/2.
  EXPECT_DOUBLE_EQ(colmodel.EntriesPerBlock(1, 0), 40.0 * 31 / 2);

  // Paper's example: CG <A,B> of 4 columns holds B*5/3 entries.
  CgConfig two = CgConfig::EquiWidth(4, 8, 2);
  LsmShape shape4 = Shape(4);
  CostModel two_model(shape4, &two);
  EXPECT_DOUBLE_EQ(two_model.EntriesPerBlock(1, 0), 40.0 * 5 / 3);
}

TEST_F(CostModelFixture, PointReadCostRowVsColumn) {
  CgConfig row = CgConfig::RowOnly(30, 8);
  CgConfig col = CgConfig::ColumnOnly(30, 8);
  CostModel rowm(Shape(), &row);
  CostModel colm(Shape(), &col);

  const ColumnSet one = {5};
  const ColumnSet all = MakeColumnRange(1, 30);

  // Row store: one group per level regardless of projection.
  EXPECT_DOUBLE_EQ(rowm.PointReadCost(one), 8.0);
  EXPECT_DOUBLE_EQ(rowm.PointReadCost(all), 8.0);

  // Column store: |Π| groups per level below L0 (L0 is row format).
  EXPECT_DOUBLE_EQ(colm.PointReadCost(one), 1.0 + 7.0);
  EXPECT_DOUBLE_EQ(colm.PointReadCost(all), 1.0 + 7.0 * 30);
}

TEST_F(CostModelFixture, PointReadCostGrowsWithProjectionForSmallCgs) {
  // Fig. 7(a): small CGs -> latency grows with projection size; large CGs ->
  // flat.
  CgConfig small = CgConfig::EquiWidth(30, 8, 1);
  CgConfig large = CgConfig::RowOnly(30, 8);
  CostModel sm(Shape(), &small);
  CostModel lg(Shape(), &large);
  double prev = 0;
  for (int k = 1; k <= 30; k += 5) {
    const double cost = sm.PointReadCost(MakeColumnRange(1, k));
    EXPECT_GT(cost, prev);
    prev = cost;
    EXPECT_DOUBLE_EQ(lg.PointReadCost(MakeColumnRange(1, k)), 8.0);
  }
}

TEST_F(CostModelFixture, EgAndEGMatchPaperExample) {
  // §5: CGs <A,B>;<C,D> -> E^g = 2 for Π={A,C}, 1 for Π={A,B};
  // E^G = 6 for Π={A,C}, 3 for Π={A,B}.
  CgConfig config = CgConfig::EquiWidth(4, 2, 2);
  LsmShape shape = Shape(4);
  shape.num_levels = 2;
  CostModel model(shape, &config);
  EXPECT_DOUBLE_EQ(model.Eg(1, {1, 3}), 2.0);
  EXPECT_DOUBLE_EQ(model.Eg(1, {1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(model.EG(1, {1, 3}), 6.0);
  EXPECT_DOUBLE_EQ(model.EG(1, {1, 2}), 3.0);
}

TEST_F(CostModelFixture, InsertCostRowLowerThanColumn) {
  // Table 2: column stores pay the key-replication overhead on writes.
  CgConfig row = CgConfig::RowOnly(30, 8);
  CgConfig col = CgConfig::ColumnOnly(30, 8);
  CostModel rowm(Shape(), &row);
  CostModel colm(Shape(), &col);
  EXPECT_LT(rowm.InsertCost(), colm.InsertCost());

  // W = T*L/B + T*sum(g_i)/(B*c); row: sum g_i = L.
  const double expected_row = 2.0 * 8 / 40 + 2.0 * 8 / (40 * 30);
  EXPECT_DOUBLE_EQ(rowm.InsertCost(), expected_row);
}

TEST_F(CostModelFixture, RangeScanNarrowProjectionFavorsColumns) {
  CgConfig row = CgConfig::RowOnly(30, 8);
  CgConfig col = CgConfig::ColumnOnly(30, 8);
  CostModel rowm(Shape(), &row);
  CostModel colm(Shape(), &col);
  const ColumnSet narrow = {7};
  const double s = 1e6;
  EXPECT_LT(colm.RangeScanCost(s, narrow), rowm.RangeScanCost(s, narrow));
  // Wide projections: row layout wins (no per-CG key overhead).
  const ColumnSet wide = MakeColumnRange(1, 30);
  EXPECT_GT(colm.RangeScanCost(s, wide), rowm.RangeScanCost(s, wide));
}

TEST_F(CostModelFixture, UpdateCostScalesWithTouchedGroups) {
  CgConfig col = CgConfig::ColumnOnly(30, 8);
  CostModel colm(Shape(), &col);
  EXPECT_LT(colm.UpdateCost({3}), colm.UpdateCost({3, 9, 21}));

  CgConfig row = CgConfig::RowOnly(30, 8);
  CostModel rowm(Shape(), &row);
  EXPECT_DOUBLE_EQ(rowm.UpdateCost({3}), rowm.UpdateCost(MakeColumnRange(1, 30)));
}

TEST_F(CostModelFixture, SelectivitySharesSumToOne) {
  CgConfig row = CgConfig::RowOnly(30, 8);
  CostModel model(Shape(), &row);
  double total = 0;
  for (int level = 0; level < 8; ++level) {
    total += model.LevelSelectivityShare(level);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(model.LevelSelectivityShare(7), model.LevelSelectivityShare(0));
}

TEST_F(CostModelFixture, SpaceAmplification) {
  CgConfig row = CgConfig::RowOnly(30, 8);
  LsmShape shape = Shape();
  shape.size_ratio = 4;
  CostModel model(shape, &row);
  EXPECT_DOUBLE_EQ(model.SpaceAmplification(), 0.25);
}

TEST_F(CostModelFixture, HybridBetweenExtremesForMixedOps) {
  // A Real-Time LSM-Tree design sits between the extremes (Table 2 rows).
  CgConfig row = CgConfig::RowOnly(30, 8);
  CgConfig col = CgConfig::ColumnOnly(30, 8);
  CgConfig mid = CgConfig::EquiWidth(30, 8, 6);
  CostModel rowm(Shape(), &row);
  CostModel colm(Shape(), &col);
  CostModel midm(Shape(), &mid);
  const ColumnSet narrow = {7, 8};
  const double s = 1e6;
  EXPECT_LT(midm.RangeScanCost(s, narrow), rowm.RangeScanCost(s, narrow));
  EXPECT_GT(midm.RangeScanCost(s, narrow), colm.RangeScanCost(s, narrow));
  EXPECT_LT(midm.PointReadCost(narrow), colm.PointReadCost(MakeColumnRange(1, 30)));
}

}  // namespace
}  // namespace laser
